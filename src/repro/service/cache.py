"""Fingerprints and bounded caches for the serving layer.

Two caches ride on the same structural fingerprints:

* :class:`ResultCache` — memoizes completed executions keyed by
  ``(dag fingerprint incl. code hashes, definition, inputs)``: a tenant
  re-submitting byte-identical work gets the finished
  :class:`~repro.core.report.RunResult` back without consuming capacity
  (the provider pockets the saved cost; the tenant skips the queue).
* :class:`AdmissionMemo` — caches the *admission* work (DAG validation,
  definition parsing, conflict resolution, provider-default filling) for
  structurally identical applications, keyed without code hashes, app
  name, or tenant: two tenants submitting the same app shape share one
  resolved template.  Placement still runs per submission against live
  pool state, so placements are byte-identical to the uncached path.

Fingerprints are canonical nested tuples (hashable, order-normalized) —
no serialization library, no timestamps, fully deterministic in-process.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import TaskModule
from repro.core.conflicts import ConflictPolicy, ConflictResolution
from repro.core.report import RunResult
from repro.core.spec import UserDefinition

__all__ = [
    "AdmissionMemo",
    "CacheStats",
    "ResultCache",
    "dag_fingerprint",
    "definition_fingerprint",
    "inputs_fingerprint",
    "requires_tenant_scope",
]


def _canon(value: Any) -> Any:
    """Canonical, hashable form of a JSON-ish value (dict order ignored)."""
    if isinstance(value, dict):
        return ("d",) + tuple(
            (str(k), _canon(v))
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
    if isinstance(value, (list, tuple)):
        return ("l",) + tuple(_canon(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("s",) + tuple(sorted(repr(_canon(v)) for v in value))
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    return repr(value)


def dag_fingerprint(dag: ModuleDAG, include_identity: bool = True) -> Tuple:
    """Structural fingerprint of an application DAG.

    ``include_identity=True`` (result caching) also folds in the app name
    and each task's ``code_hash`` so different code never shares results.
    With ``include_identity=False`` (admission memoization) only the
    shape that admission examines remains — everything ``validate()``,
    conflict resolution, and provider defaults can observe.
    """
    modules = []
    for name in sorted(dag.modules):
        module = dag.modules[name]
        if isinstance(module, TaskModule):
            modules.append((
                "task", name, module.work,
                tuple(sorted(d.value for d in module.device_candidates)),
                module.output_bytes, module.state_bytes,
                module.max_parallelism, module.sanitizer,
                module.code_hash if include_identity else "",
            ))
        else:
            modules.append((
                "data", name, module.size_gb, module.record_bytes,
                module.hot, module.sensitivity,
            ))
    edges = tuple(sorted(
        (e.src, e.dst, e.bytes_transferred) for e in dag.edges
    ))
    groups = tuple(sorted(
        tuple(sorted(group)) for group in dag.colocate_groups
    ))
    affinities = tuple(sorted(
        (task, data, weight)
        for (task, data), weight in dag.affinities.items()
    ))
    name = dag.name if include_identity else ""
    return (name, tuple(modules), edges, groups, affinities)


def definition_fingerprint(
    definition: "UserDefinition | Dict | None",
) -> Tuple:
    """Canonical key for a definition in any accepted form.

    Raw dicts are canonicalized without parsing (the whole point of the
    admission memo is to skip ``parse_definition``); parsed definitions
    key off their frozen-dataclass repr.
    """
    if definition is None:
        return ("none",)
    if isinstance(definition, dict):
        return ("dict", _canon(definition))
    if isinstance(definition, UserDefinition):
        return ("parsed", tuple(
            (name, repr(bundle))
            for name, bundle in sorted(definition.bundles.items())
        ))
    return ("other", repr(definition))


def inputs_fingerprint(inputs: Optional[Dict[str, Any]]) -> Tuple:
    return _canon(inputs or {})


def requires_tenant_scope(dag: ModuleDAG) -> bool:
    """True when the app carries any non-``public`` sensitivity label.

    Such an app's outputs are information-flow sensitive (the C4 story:
    ``public < anonymized < phi``), so its cached results must never be
    served across tenants — one tenant's PHI report is not another's,
    even for byte-identical submissions.  Unlabeled and ``public``-only
    apps keep sharing cache entries: their results are, by declaration,
    not tenant-confidential.
    """
    return any(
        getattr(module, "sensitivity", None) not in (None, "public")
        for module in dag.modules.values()
    )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Bounded LRU over completed :class:`RunResult`\\ s.

    ``capacity <= 0`` disables the cache (every get misses, puts drop).
    """

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, RunResult]" = OrderedDict()
        self.stats = CacheStats()

    @staticmethod
    def key(
        dag: ModuleDAG,
        definition,
        inputs: Optional[Dict[str, Any]],
        tenant: Optional[str] = None,
    ) -> Tuple:
        """Cache key, tenant-scoped when the app is sensitivity-labeled.

        Entries for apps carrying any non-``public`` sensitivity label
        are scoped to the submitting tenant (no cross-tenant hits);
        public-only apps share one entry across tenants.  ``tenant=None``
        preserves the historical unscoped key for callers outside the
        serving layer.
        """
        scope = (
            ("tenant", tenant)
            if tenant is not None and requires_tenant_scope(dag)
            else ("shared",)
        )
        return (
            scope,
            dag_fingerprint(dag, include_identity=True),
            definition_fingerprint(definition),
            inputs_fingerprint(inputs),
        )

    def get(self, key: Tuple) -> Optional[RunResult]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: Tuple, result: RunResult) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self.stats.size = len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class AdmissionMemo:
    """Bounded LRU of admission templates, consumed by
    :meth:`~repro.core.runtime.UDCRuntime.admit` when installed on the
    runtime (``runtime.admission_memo``).

    A template holds one app shape's :class:`ConflictResolution` and the
    default-filled (frozen, shareable) per-module aspect bundles; hitting
    it skips DAG validation, definition parsing, and conflict resolution
    for every subsequent structurally identical submission.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Tuple[ConflictResolution, Dict]]" \
            = OrderedDict()
        self.stats = CacheStats()
        #: (id(dag), id(definition)) -> (dag, definition, key), alive only
        #: inside identity_round(); strong refs keep the ids stable
        self._round_keys: Optional[Dict[Tuple[int, int], Tuple]] = None

    @staticmethod
    def key(dag: ModuleDAG, definition, policy: ConflictPolicy) -> Tuple:
        return (
            dag_fingerprint(dag, include_identity=False),
            definition_fingerprint(definition),
            policy.value,
        )

    @contextmanager
    def identity_round(self):
        """Skip re-fingerprinting repeated (dag, definition) *objects*.

        Sound only while no caller code runs between submissions — one
        service dispatch round flushes its buffer atomically, so the same
        object cannot have been mutated between two of the round's
        submissions.  Serial submissions return to the caller in between
        (the dict may be mutated), hence no identity shortcut there.
        """
        self._round_keys = {}
        try:
            yield
        finally:
            self._round_keys = None

    def _key_for(self, dag, definition, policy: ConflictPolicy) -> Tuple:
        round_keys = self._round_keys
        if round_keys is None:
            return self.key(dag, definition, policy)
        id_key = (id(dag), id(definition), policy.value)
        entry = round_keys.get(id_key)
        if entry is None or entry[0] is not dag or entry[1] is not definition:
            entry = (dag, definition, self.key(dag, definition, policy))
            round_keys[id_key] = entry
        return entry[2]

    def lookup(
        self, dag: ModuleDAG, definition, policy: ConflictPolicy
    ) -> Optional[Tuple[ConflictResolution, Dict]]:
        key = self._key_for(dag, definition, policy)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def store(
        self,
        dag: ModuleDAG,
        definition,
        policy: ConflictPolicy,
        resolution: ConflictResolution,
        bundles: Dict,
    ) -> None:
        if self.capacity <= 0:
            return
        self._entries[self._key_for(dag, definition, policy)] = (resolution, bundles)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self.stats.size = len(self._entries)
