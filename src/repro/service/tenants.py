"""Tenant identities, quotas, and the typed tenant/submission options.

The paper's provider multiplexes many user-defined clouds over one
substrate (§2); :class:`Tenant` is the serving layer's unit of isolation
for admission accounting: a fair-share weight (consumed by
:class:`~repro.core.admission.WeightedFairShare`) and an optional
:class:`TenantQuota` capping concurrent work.  Quota violations raise
:class:`QuotaExceeded` at submit time — load shedding at the front door,
before any control-plane work is spent.

:class:`TenantSpec` and :class:`SubmitOptions` are the typed fronts for
everything a tenant declares about itself (weight, quota, budget,
tier/goal, pricing plan, SLO) and about one submission (lint override,
priority, deadline, cache opt-out).  Both come with fluent builders
(:func:`tenant_spec`, :func:`submit_options`) mirroring the
``repro.define()`` idiom, and both are duck-typed at the service front
door via ``build_spec()`` / ``build_options()`` — a builder passed where
the dataclass is expected compiles itself on admission.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.economics.autopilot import FIRM_PLAN, SPOT_PLAN, PricingPlan

__all__ = [
    "BudgetExceeded",
    "QuotaExceeded",
    "SubmitOptions",
    "SubmitOptionsBuilder",
    "Tenant",
    "TenantQuota",
    "TenantSpec",
    "TenantSpecBuilder",
    "submit_options",
    "tenant_spec",
]


class QuotaExceeded(Exception):
    """A submission would push the tenant past its quota."""

    def __init__(self, tenant: str, message: str):
        super().__init__(f"tenant {tenant!r}: {message}")
        self.tenant = tenant


class BudgetExceeded(QuotaExceeded):
    """A submission would push the tenant past its spending ceiling.

    Subclasses :class:`QuotaExceeded` so every existing front-door
    handler (gateway 429s, replay journaling) treats budget exhaustion
    as the load shedding it is; catch this type to tell the two apart.
    """


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits, enforced at submit time.

    ``max_in_flight`` caps submissions that are pending, queued, or
    running at once (completed and cache-served submissions free their
    slot).  ``max_submissions`` caps lifetime submissions accepted.
    ``None`` means unlimited.
    """

    max_in_flight: Optional[int] = None
    max_submissions: Optional[int] = None

    def __post_init__(self):
        for label, value in (("max_in_flight", self.max_in_flight),
                             ("max_submissions", self.max_submissions)):
            if value is not None and value < 1:
                raise ValueError(f"{label} must be >= 1, got {value}")


@dataclass
class Tenant:
    """One registered tenant of a :class:`~repro.service.UDCService`."""

    name: str
    #: fair-share weight: long-run admission rate is proportional to this
    weight: float = 1.0
    quota: Optional[TenantQuota] = None
    #: lifetime submissions accepted (cache hits included)
    submitted: int = 0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be positive, "
                f"got {self.weight}"
            )

    def check_quota(self, in_flight: int) -> None:
        """Raise :class:`QuotaExceeded` if one more submission would
        exceed this tenant's limits (``in_flight`` counts live work
        *before* the new submission)."""
        if self.quota is None:
            return
        quota = self.quota
        if quota.max_submissions is not None \
                and self.submitted >= quota.max_submissions:
            raise QuotaExceeded(
                self.name,
                f"lifetime submission quota {quota.max_submissions} reached",
            )
        if quota.max_in_flight is not None \
                and in_flight >= quota.max_in_flight:
            raise QuotaExceeded(
                self.name,
                f"{in_flight} submissions in flight "
                f"(quota {quota.max_in_flight})",
            )


@dataclass(frozen=True)
class TenantSpec:
    """Everything a tenant declares about itself, in one typed value.

    Accepted by :meth:`~repro.service.UDCService.register_tenant` in
    place of the old kwarg list.  ``goal="cheapest"`` is the paper's
    C10 declaration — the tenant states an objective and the provider
    optimizes — and resolves to the preemptible spot tier unless
    ``tier`` overrides it explicitly.
    """

    #: fair-share weight (stride scheduling denominator)
    weight: float = 1.0
    quota: Optional[TenantQuota] = None
    #: hard spending budget enforced at the submission front door
    budget_dollars: Optional[float] = None
    #: "firm" (default) or "spot" (discounted, preemption-eligible)
    tier: str = "firm"
    #: optional objective; "cheapest" implies the spot tier
    goal: Optional[str] = None
    #: per-submission SLO on queue wait + makespan, for attainment
    #: accounting (overridable per submission via SubmitOptions)
    slo_s: Optional[float] = None
    #: billing plan; None resolves from the effective tier
    pricing: Optional[PricingPlan] = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.tier not in ("firm", "spot"):
            raise ValueError(
                f"tier must be 'firm' or 'spot', got {self.tier!r}"
            )
        if self.goal not in (None, "cheapest", "fastest"):
            raise ValueError(
                f"goal must be 'cheapest' or 'fastest', got {self.goal!r}"
            )
        if self.budget_dollars is not None and self.budget_dollars <= 0:
            raise ValueError(
                f"budget_dollars must be positive, got {self.budget_dollars}"
            )
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {self.slo_s}")

    @property
    def effective_tier(self) -> str:
        """The placement tier after goal resolution: declaring
        ``goal="cheapest"`` opts into spot unless ``tier`` was set."""
        if self.tier == "spot" or self.goal == "cheapest":
            return "spot"
        return "firm"

    @property
    def plan(self) -> PricingPlan:
        """The billing plan in effect (explicit, or tier default)."""
        if self.pricing is not None:
            return self.pricing
        return SPOT_PLAN if self.effective_tier == "spot" else FIRM_PLAN

    # duck-typing hook consumed by UDCService.register_tenant: a spec
    # passed where a spec is expected is already built.
    def build_spec(self) -> "TenantSpec":
        return self


@dataclass(frozen=True)
class SubmitOptions:
    """Per-submission options for :meth:`~repro.service.UDCService
    .submit`, consolidating the old ad-hoc kwarg list.

    All fields default to "inherit the service/tenant configuration":
    ``lint=None`` follows the service's lint flag, ``deadline_s=None``
    follows the tenant spec's ``slo_s``.
    """

    #: tri-state lint override (None = service default)
    lint: Optional[bool] = None
    #: higher priority dispatches earlier within a round (default 0)
    priority: int = 0
    #: per-submission SLO override on queue wait + makespan
    deadline_s: Optional[float] = None
    #: opt this submission out of result-cache lookup AND insertion
    use_cache: bool = True

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    # duck-typing hook consumed by UDCService.submit.
    def build_options(self) -> "SubmitOptions":
        return self


def tenant_spec() -> "TenantSpecBuilder":
    """Start a fluent tenant spec: ``tenant_spec().weight(2).spot()``."""
    return TenantSpecBuilder()


class TenantSpecBuilder:
    """Fluent front for :class:`TenantSpec`, mirroring ``define()``.

    Each setter returns the builder; :meth:`build` produces the frozen
    spec.  The builder itself is accepted by ``register_tenant`` (it
    compiles on admission via ``build_spec``), so call sites can stay
    fluent end to end.
    """

    def __init__(self):
        self._spec = TenantSpec()

    def weight(self, weight: float) -> "TenantSpecBuilder":
        self._spec = replace(self._spec, weight=weight)
        return self

    def quota(self, quota: TenantQuota) -> "TenantSpecBuilder":
        self._spec = replace(self._spec, quota=quota)
        return self

    def budget(self, dollars: float) -> "TenantSpecBuilder":
        self._spec = replace(self._spec, budget_dollars=dollars)
        return self

    def goal(self, goal: str) -> "TenantSpecBuilder":
        self._spec = replace(self._spec, goal=goal)
        return self

    def spot(self) -> "TenantSpecBuilder":
        self._spec = replace(self._spec, tier="spot")
        return self

    def firm(self) -> "TenantSpecBuilder":
        self._spec = replace(self._spec, tier="firm")
        return self

    def slo(self, seconds: float) -> "TenantSpecBuilder":
        self._spec = replace(self._spec, slo_s=seconds)
        return self

    def pricing(self, plan: PricingPlan) -> "TenantSpecBuilder":
        self._spec = replace(self._spec, pricing=plan)
        return self

    def build(self) -> TenantSpec:
        return self._spec

    # duck-typing hook consumed by UDCService.register_tenant.
    def build_spec(self) -> TenantSpec:
        return self._spec


def submit_options() -> "SubmitOptionsBuilder":
    """Start fluent submit options: ``submit_options().priority(2)``."""
    return SubmitOptionsBuilder()


class SubmitOptionsBuilder:
    """Fluent front for :class:`SubmitOptions` (see ``tenant_spec``)."""

    def __init__(self):
        self._options = SubmitOptions()

    def lint(self, enabled: bool) -> "SubmitOptionsBuilder":
        self._options = replace(self._options, lint=enabled)
        return self

    def priority(self, priority: int) -> "SubmitOptionsBuilder":
        self._options = replace(self._options, priority=priority)
        return self

    def deadline(self, seconds: float) -> "SubmitOptionsBuilder":
        self._options = replace(self._options, deadline_s=seconds)
        return self

    def no_cache(self) -> "SubmitOptionsBuilder":
        self._options = replace(self._options, use_cache=False)
        return self

    def build(self) -> SubmitOptions:
        return self._options

    # duck-typing hook consumed by UDCService.submit.
    def build_options(self) -> SubmitOptions:
        return self._options
