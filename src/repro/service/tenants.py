"""Tenant identities and quotas for the serving layer.

The paper's provider multiplexes many user-defined clouds over one
substrate (§2); :class:`Tenant` is the serving layer's unit of isolation
for admission accounting: a fair-share weight (consumed by
:class:`~repro.core.admission.WeightedFairShare`) and an optional
:class:`TenantQuota` capping concurrent work.  Quota violations raise
:class:`QuotaExceeded` at submit time — load shedding at the front door,
before any control-plane work is spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["QuotaExceeded", "Tenant", "TenantQuota"]


class QuotaExceeded(Exception):
    """A submission would push the tenant past its quota."""

    def __init__(self, tenant: str, message: str):
        super().__init__(f"tenant {tenant!r}: {message}")
        self.tenant = tenant


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits, enforced at submit time.

    ``max_in_flight`` caps submissions that are pending, queued, or
    running at once (completed and cache-served submissions free their
    slot).  ``max_submissions`` caps lifetime submissions accepted.
    ``None`` means unlimited.
    """

    max_in_flight: Optional[int] = None
    max_submissions: Optional[int] = None

    def __post_init__(self):
        for label, value in (("max_in_flight", self.max_in_flight),
                             ("max_submissions", self.max_submissions)):
            if value is not None and value < 1:
                raise ValueError(f"{label} must be >= 1, got {value}")


@dataclass
class Tenant:
    """One registered tenant of a :class:`~repro.service.UDCService`."""

    name: str
    #: fair-share weight: long-run admission rate is proportional to this
    weight: float = 1.0
    quota: Optional[TenantQuota] = None
    #: lifetime submissions accepted (cache hits included)
    submitted: int = 0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be positive, "
                f"got {self.weight}"
            )

    def check_quota(self, in_flight: int) -> None:
        """Raise :class:`QuotaExceeded` if one more submission would
        exceed this tenant's limits (``in_flight`` counts live work
        *before* the new submission)."""
        if self.quota is None:
            return
        quota = self.quota
        if quota.max_submissions is not None \
                and self.submitted >= quota.max_submissions:
            raise QuotaExceeded(
                self.name,
                f"lifetime submission quota {quota.max_submissions} reached",
            )
        if quota.max_in_flight is not None \
                and in_flight >= quota.max_in_flight:
            raise QuotaExceeded(
                self.name,
                f"{in_flight} submissions in flight "
                f"(quota {quota.max_in_flight})",
            )
