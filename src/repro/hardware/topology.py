"""Datacenter builder: pods of racks of typed device sleds.

:func:`build_datacenter` assembles a :class:`Datacenter` — the PoolSet, the
Fabric, and location bookkeeping — from a declarative
:class:`DatacenterSpec`.  Every benchmark and example builds its substrate
through this function so topologies stay consistent across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.devices import DEFAULT_SPECS, Device, DeviceSpec, DeviceType
from repro.hardware.fabric import Fabric, Location
from repro.hardware.pools import PoolSet, ResourcePool
from repro.simulator.engine import SimClock, Simulator

__all__ = ["Datacenter", "DatacenterSpec", "build_datacenter"]


@dataclass
class DatacenterSpec:
    """Declarative shape of a disaggregated datacenter.

    ``devices_per_rack`` maps a device type to how many sleds of that type
    each rack carries.  By default racks are homogeneous; real fleets
    specialize racks (GPU rows, storage rows), which ``rack_profiles``
    expresses: a list of per-rack device maps assigned round-robin to the
    racks of each pod (overriding ``devices_per_rack`` when non-empty).
    """

    pods: int = 1
    racks_per_pod: int = 2
    devices_per_rack: Dict[DeviceType, int] = field(
        default_factory=lambda: {
            DeviceType.CPU: 4,
            DeviceType.GPU: 2,
            DeviceType.DRAM: 2,
            DeviceType.NVM: 1,
            DeviceType.SSD: 1,
            DeviceType.HDD: 1,
        }
    )
    #: heterogeneous rack layouts, applied round-robin per pod
    rack_profiles: List[Dict[DeviceType, int]] = field(default_factory=list)
    #: per-type spec overrides; anything absent uses DEFAULT_SPECS
    spec_overrides: Dict[DeviceType, DeviceSpec] = field(default_factory=dict)

    def spec_for(self, device_type: DeviceType) -> DeviceSpec:
        return self.spec_overrides.get(device_type, DEFAULT_SPECS[device_type])

    def profile_for_rack(self, rack: int) -> Dict[DeviceType, int]:
        if self.rack_profiles:
            return self.rack_profiles[rack % len(self.rack_profiles)]
        return self.devices_per_rack

    def all_device_types(self) -> List[DeviceType]:
        """Every type any rack carries (the pool set to create)."""
        types: Dict[DeviceType, None] = {}
        if self.rack_profiles:
            for profile in self.rack_profiles:
                for device_type in profile:
                    types[device_type] = None
        else:
            for device_type in self.devices_per_rack:
                types[device_type] = None
        return list(types)


@dataclass
class Datacenter:
    """A built datacenter: pools + fabric + the simulator that drives it."""

    sim: Simulator
    spec: DatacenterSpec
    pools: PoolSet
    fabric: Fabric
    devices: List[Device] = field(default_factory=list)
    #: one switch location per pod; in-network sequencers attach here
    switch_locations: List[Location] = field(default_factory=list)

    def pool(self, device_type: DeviceType) -> ResourcePool:
        return self.pools.pool(device_type)

    def devices_at(self, location: Location) -> List[Device]:
        return [d for d in self.devices if d.location == location]

    def rack_locations(self) -> List[Location]:
        seen: Dict[tuple, Location] = {}
        for device in self.devices:
            loc: Location = device.location
            seen.setdefault((loc.pod, loc.rack), Location(loc.pod, loc.rack, 0))
        return [seen[key] for key in sorted(seen)]

    def find_device(self, device_id: str) -> Optional[Device]:
        for device in self.devices:
            if device.device_id == device_id:
                return device
        return None


def build_datacenter(
    spec: Optional[DatacenterSpec] = None,
    sim: Optional[Simulator] = None,
    indexed_pools: bool = True,
) -> Datacenter:
    """Construct pools, devices, and fabric per ``spec``.

    Devices of each type are placed round-robin across slots within each
    rack; every pod gets one switch location (rack index -1 by convention)
    for in-network sequencing.  ``indexed_pools=False`` builds the naive
    reference allocator (scan-and-sort placement, re-summed accounting) —
    decisions are identical, only the complexity differs; the
    placement-equivalence golden test and ``bench_perf_scale`` rely on it.
    """
    spec = spec or DatacenterSpec()
    sim = sim or Simulator()
    fabric = Fabric(sim)
    pools = PoolSet()
    datacenter = Datacenter(sim=sim, spec=spec, pools=pools, fabric=fabric)

    for device_type in spec.all_device_types():
        pool = ResourcePool(
            device_type, clock=SimClock(sim), indexed=indexed_pools
        )
        pools.pools[device_type] = pool

    for pod in range(spec.pods):
        datacenter.switch_locations.append(Location(pod=pod, rack=-1, slot=0))
        for rack in range(spec.racks_per_pod):
            slot = 0
            for device_type, count in spec.profile_for_rack(rack).items():
                device_spec = spec.spec_for(device_type)
                for _ in range(count):
                    device = Device(
                        spec=device_spec,
                        location=Location(pod=pod, rack=rack, slot=slot),
                    )
                    slot += 1
                    pools.pools[device_type].add_device(device)
                    datacenter.devices.append(device)
    return datacenter
