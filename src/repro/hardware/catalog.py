"""EC2-like instance catalog with the paper's cited shapes and 2021 prices.

§1's motivating example: *"to use 8 GPUs in a VM ... AWS users must select
an EC2 p3.16xlarge or p3dn.24xlarge instance, which come with 64 and 96
vCPUs, respectively, even if they need only a small number of vCPUs."*

The catalog below embeds the real on-demand us-east-1 shapes and prices
(2021) for the general-purpose (m5), compute (c5), memory (r5), and GPU
(p3) families.  The waste benchmark (E1) allocates workload mixes against
this catalog and against UDC's exact pools, then compares paid-but-unused
capacity against the paper's ~35% figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.server import WorkloadDemand

__all__ = ["InstanceCatalog", "InstanceType", "default_catalog"]


@dataclass(frozen=True)
class InstanceType:
    """One rentable instance shape."""

    name: str
    vcpus: float
    mem_gb: float
    gpus: float
    price_hour: float
    family: str = ""

    def fits(self, demand: WorkloadDemand) -> bool:
        return (
            self.vcpus + 1e-9 >= demand.cpus
            and self.mem_gb + 1e-9 >= demand.mem_gb
            and self.gpus + 1e-9 >= demand.gpus
        )

    def waste_fraction(self, demand: WorkloadDemand, unit_prices: Dict[str, float]) -> float:
        """Fraction of this instance's price paying for capacity the demand
        does not use, weighting dimensions by their unit prices."""
        paid = (
            self.vcpus * unit_prices["vcpu"]
            + self.mem_gb * unit_prices["mem_gb"]
            + self.gpus * unit_prices["gpu"]
        )
        used = (
            min(demand.cpus, self.vcpus) * unit_prices["vcpu"]
            + min(demand.mem_gb, self.mem_gb) * unit_prices["mem_gb"]
            + min(demand.gpus, self.gpus) * unit_prices["gpu"]
        )
        return 1.0 - used / paid if paid > 0 else 0.0


#: Per-resource unit prices solved from the real catalog so that unit-sum
#: billing is *consistent* with it: m5.large and c5.large decompose
#: exactly (2v+8m=0.096, 2v+4m=0.085 -> v=0.037, m=0.00275), and the GPU
#: rate then solves p3.2xlarge (8v+61m+g=3.06 -> g=2.596).  Every
#: instance's unit-sum is <= its price, so waste fractions are >= 0.
UNIT_PRICES = {"vcpu": 0.037, "mem_gb": 0.00275, "gpu": 2.596}


class InstanceCatalog:
    """A set of instance types with cheapest-fit selection."""

    def __init__(self, instances: List[InstanceType]):
        if not instances:
            raise ValueError("catalog must not be empty")
        self.instances = sorted(instances, key=lambda i: i.price_hour)
        self._by_name = {i.name: i for i in self.instances}

    def __iter__(self):
        return iter(self.instances)

    def __len__(self) -> int:
        return len(self.instances)

    def get(self, name: str) -> InstanceType:
        return self._by_name[name]

    def cheapest_fit(self, demand: WorkloadDemand) -> Optional[InstanceType]:
        """The cheapest single instance that covers ``demand``, or None."""
        for instance in self.instances:  # sorted by price
            if instance.fits(demand):
                return instance
        return None

    def exact_cost(self, demand: WorkloadDemand) -> float:
        """What the demand would cost if billed per-unit (the UDC model),
        at the same unit prices used to decompose instance prices."""
        return (
            demand.cpus * UNIT_PRICES["vcpu"]
            + demand.mem_gb * UNIT_PRICES["mem_gb"]
            + demand.gpus * UNIT_PRICES["gpu"]
        )


def default_catalog() -> InstanceCatalog:
    """The 2021 us-east-1 on-demand catalog subset the paper's example uses."""
    shapes = [
        # family m5 — general purpose (1:4 vCPU:GB)
        ("m5.large", 2, 8, 0, 0.096),
        ("m5.xlarge", 4, 16, 0, 0.192),
        ("m5.2xlarge", 8, 32, 0, 0.384),
        ("m5.4xlarge", 16, 64, 0, 0.768),
        ("m5.8xlarge", 32, 128, 0, 1.536),
        ("m5.12xlarge", 48, 192, 0, 2.304),
        ("m5.16xlarge", 64, 256, 0, 3.072),
        ("m5.24xlarge", 96, 384, 0, 4.608),
        # family c5 — compute optimized (1:2)
        ("c5.large", 2, 4, 0, 0.085),
        ("c5.xlarge", 4, 8, 0, 0.17),
        ("c5.2xlarge", 8, 16, 0, 0.34),
        ("c5.4xlarge", 16, 32, 0, 0.68),
        ("c5.9xlarge", 36, 72, 0, 1.53),
        ("c5.12xlarge", 48, 96, 0, 2.04),
        ("c5.18xlarge", 72, 144, 0, 3.06),
        ("c5.24xlarge", 96, 192, 0, 4.08),
        # family r5 — memory optimized (1:8)
        ("r5.large", 2, 16, 0, 0.126),
        ("r5.xlarge", 4, 32, 0, 0.252),
        ("r5.2xlarge", 8, 64, 0, 0.504),
        ("r5.4xlarge", 16, 128, 0, 1.008),
        ("r5.8xlarge", 32, 256, 0, 2.016),
        ("r5.12xlarge", 48, 384, 0, 3.024),
        ("r5.16xlarge", 64, 512, 0, 4.032),
        ("r5.24xlarge", 96, 768, 0, 6.048),
        # family p3 — GPU (V100); the paper's §1 example instances
        ("p3.2xlarge", 8, 61, 1, 3.06),
        ("p3.8xlarge", 32, 244, 4, 12.24),
        ("p3.16xlarge", 64, 488, 8, 24.48),
        ("p3dn.24xlarge", 96, 768, 8, 31.212),
    ]
    return InstanceCatalog(
        [
            InstanceType(
                name=name,
                vcpus=float(vcpus),
                mem_gb=float(mem),
                gpus=float(gpus),
                price_hour=price,
                family=name.split(".", 1)[0],
            )
            for name, vcpus, mem, gpus, price in shapes
        ]
    )
