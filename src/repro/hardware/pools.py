"""Typed resource pools with exact-amount allocation.

This module realizes the paper's central mechanism (§3.2): *"Fulfilling
users' resource demands would then simply be allocating the exact amount
from the corresponding resource pools (instead of a bin-packing problem
with traditional servers)."*

A :class:`ResourcePool` owns all devices of one :class:`DeviceType`.
Allocation requests name an exact amount (possibly fractional, down to the
device's ``min_grain``), a tenant, and placement constraints (preferred
location for locality, single-tenant pinning for the security aspect).
Pools keep a time-weighted utilization integral so the disaggregation
benchmark (E2) can compare utilization against server bin-packing.

Placement hot path
------------------

Best-fit placement is served from an incrementally-maintained sorted index
of ``(free, seq)`` keys (a plain ``bisect`` list — no external
dependencies) plus per-location buckets, so one ``allocate`` is
O(log N + k) in the number of devices instead of the historical
scan-and-sort O(N log N).  Pool-level ``total_used`` / ``peak_used`` /
the utilization integral are maintained incrementally from per-device
cached counters, so ``_sample`` is O(1) instead of O(devices ×
allocations).  Placement *decisions* are byte-identical to the naive
path: the index preserves the exact ``(local, free, seq)`` tie-break
order, and the per-device cache never drifts from a re-sum (see
``Device._remove_alloc``).  The naive path itself is preserved
(``ResourcePool(..., indexed=False)``) as the reference for the
placement-equivalence golden test and the ``bench_perf_scale``
speedup baseline; see ``docs/performance.md``.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hardware.devices import Device, DeviceSpec, DeviceType

__all__ = ["Allocation", "AllocationError", "PoolSet", "ResourcePool"]

_alloc_ids = itertools.count()


def _frozen_clock() -> float:
    """Default pool clock for pools built without a simulator (unit
    tests): time stands still.  A named function, not a lambda, so
    pools stay picklable for replay snapshots."""
    return 0.0


class AllocationError(Exception):
    """Raised when a pool cannot satisfy a request."""


@dataclass
class Allocation:
    """A live slice of one device granted to one tenant."""

    alloc_id: str
    device: Device
    amount: float
    tenant: str
    single_tenant: bool = False
    released: bool = False
    created_at: float = 0.0

    @property
    def device_type(self) -> DeviceType:
        return self.device.device_type

    @property
    def hourly_cost(self) -> float:
        """On-demand cost of holding this allocation for one hour.

        Single-tenant allocations are billed for the whole device — the
        stranded remainder cannot be sold to anyone else (§3.3's "large
        resource wastes" caveat), which E4 quantifies.
        """
        billed = self.device.spec.capacity if self.single_tenant else self.amount
        return billed * self.device.spec.unit_price_hour


class ResourcePool:
    """All devices of one type, with allocation and utilization telemetry.

    ``indexed=True`` (the default) enables the O(log N) placement index
    and O(1) incremental capacity accounting.  ``indexed=False`` keeps
    the original scan-sort-and-resum behavior as a reference path; both
    modes make identical placement decisions.
    """

    def __init__(self, device_type: DeviceType, clock=None, indexed: bool = True):
        self.device_type = device_type
        self.devices: List[Device] = []
        self._allocations: Dict[str, Allocation] = {}
        #: callable returning current time; wired to the simulator via a
        #: picklable SimClock by the datacenter builder.  Defaults to a
        #: frozen clock for unit tests.  Must stay picklable: snapshots
        #: (repro.replay) serialize pools, and a lambda here would break
        #: them.
        self._clock = clock if clock is not None else _frozen_clock
        self._last_sample_time = 0.0
        self._used_time_integral = 0.0  # ∫ used(t) dt
        self.peak_used = 0.0
        #: Optional predicate applied to candidate devices during
        #: auto-placement; the runtime wires this to its circuit-breaker
        #: registry so tripped devices are skipped.  Explicit ``device=``
        #: requests (standby failover, migration) bypass it.
        self.admission_filter = None
        #: Optional trace sink: when set to a list, every successful
        #: allocate appends ``(device.seq, amount, tenant)`` — the
        #: placement-equivalence golden test hangs off this.
        self.alloc_log: Optional[List[Tuple[int, float, str]]] = None
        #: Placement-cell label (``repro.core.cells``): set by
        #: partition_datacenter so metric gauges carry a ``cell`` label.
        #: None for unsharded pools — label sets stay byte-identical to
        #: the pre-cells output in that case.
        self.cell: Optional[str] = None

        self.indexed = indexed
        # Live-capacity accounting (devices that are not failed), kept
        # incrementally in indexed mode.  One definition serves
        # total_capacity, total_used, utilization, _sample, and the
        # utilization report — see _device_is_live.
        self._live_capacity = 0.0
        self._live_used = 0.0
        # Placement index: sorted (free, seq) keys over live devices,
        # globally and per exact location, plus seq lookups.
        self._free_index: List[Tuple[float, int]] = []
        self._loc_index: Dict[object, List[Tuple[float, int]]] = {}
        self._index_keys: Dict[int, Tuple[float, int]] = {}
        self._by_seq: Dict[int, Device] = {}
        self._devices_by_seq: List[Device] = []
        #: (pod, rack) -> live device count, for O(1) rack enumeration
        self._rack_counts: Dict[Tuple[int, int], int] = {}

    # -- construction ------------------------------------------------------

    def add_device(self, device: Device) -> None:
        if device.device_type != self.device_type:
            raise ValueError(
                f"device {device.device_id} is {device.device_type}, "
                f"pool is {self.device_type}"
            )
        self.devices.append(device)
        device._register_pool(self)
        self._by_seq[device.seq] = device
        insort(self._devices_by_seq, device, key=lambda d: d.seq)
        if self._device_is_live(device):
            self._live_capacity += device.spec.capacity
            self._live_used += device.used
            self._rack_add(device)
            if self.indexed:
                self._index_add(device)

    def detach_all_devices(self) -> List[Device]:
        """Deregister every device and return them, ordered by seq.

        Cell partitioning (:func:`repro.core.cells.partition_datacenter`)
        moves a fresh datacenter's devices into per-cell pools; leaving
        them registered here too would let this pool's incremental
        accounting go stale the moment a cell pool allocates (accounting
        deltas only flow to the pool performing the operation).  Bulk
        reset — not per-device removal — so a 100k-device partition is
        O(N), not O(N²) of list deletions.  Refuses to detach while any
        allocation is live: partition before placing.
        """
        if self._allocations:
            raise ValueError(
                f"{self.device_type.value} pool has "
                f"{len(self._allocations)} live allocations; partition "
                f"into cells before placing anything"
            )
        moved = sorted(self.devices, key=lambda d: d.seq)
        for device in moved:
            device._pools.remove(self)
        self.devices = []
        self._live_capacity = 0.0
        self._live_used = 0.0
        self._free_index = []
        self._loc_index = {}
        self._index_keys = {}
        self._by_seq = {}
        self._devices_by_seq = []
        self._rack_counts = {}
        return moved

    # -- capacity accounting -------------------------------------------------

    @staticmethod
    def _device_is_live(device: Device) -> bool:
        """THE definition of live capacity, used by every aggregate below.

        A device counts toward pool capacity unless it has *failed*.
        Devices with open circuit breakers remain live: a breaker gates
        admission (``admission_filter``), not capacity — the hardware is
        still powered, billed, and holding its allocations.
        """
        return not device.failed

    @property
    def total_capacity(self) -> float:
        if self.indexed:
            return self._live_capacity
        return sum(d.spec.capacity for d in self.devices
                   if self._device_is_live(d))

    @property
    def total_used(self) -> float:
        if self.indexed:
            return self._live_used
        return sum(d.recompute_used() for d in self.devices
                   if self._device_is_live(d))

    @property
    def total_free(self) -> float:
        return self.total_capacity - self.total_used

    def max_free(self) -> float:
        """Largest free capacity on any live device (0.0 when none)."""
        if self.indexed:
            return self._free_index[-1][0] if self._free_index else 0.0
        return max(
            (d.free for d in self.devices if self._device_is_live(d)),
            default=0.0,
        )

    def devices_by_seq(self) -> List[Device]:
        """All devices in deterministic ``seq`` order (do not mutate)."""
        return self._devices_by_seq

    def live_rack_locations(self) -> List:
        """Sorted rack-level Locations that hold at least one live device."""
        from repro.hardware.fabric import Location

        if self.indexed:
            return [Location(pod, rack, 0)
                    for pod, rack in sorted(self._rack_counts)]
        racks = {
            (d.location.pod, d.location.rack)
            for d in self.devices
            if self._device_is_live(d) and d.location is not None
        }
        return [Location(pod, rack, 0) for pod, rack in sorted(racks)]

    def utilization(self) -> float:
        """Instantaneous fraction of live capacity in use."""
        cap = self.total_capacity
        return self.total_used / cap if cap else 0.0

    def _sample(self) -> None:
        now = self._clock()
        dt = now - self._last_sample_time
        if dt > 0:
            self._used_time_integral += self.total_used * dt
            self._last_sample_time = now

    def mean_utilization(self) -> float:
        """Time-weighted mean utilization since pool creation."""
        self._sample()
        elapsed = self._last_sample_time
        cap = self.total_capacity
        if elapsed <= 0 or cap <= 0:
            return self.utilization()
        return self._used_time_integral / (elapsed * cap)

    # -- placement index ------------------------------------------------------

    def _index_add(self, device: Device) -> None:
        key = (device.free, device.seq)
        self._index_keys[device.seq] = key
        insort(self._free_index, key)
        insort(self._loc_index.setdefault(device.location, []), key)

    def _index_remove(self, device: Device) -> None:
        key = self._index_keys.pop(device.seq, None)
        if key is None:
            return
        i = bisect_left(self._free_index, key)
        del self._free_index[i]
        bucket = self._loc_index[device.location]
        i = bisect_left(bucket, key)
        del bucket[i]

    def _index_update(self, device: Device) -> None:
        """Re-key one device after its free capacity changed."""
        if not self.indexed or device.seq not in self._index_keys:
            return
        self._index_remove(device)
        self._index_add(device)

    def _rack_add(self, device: Device) -> None:
        if device.location is None:
            return
        rack = (device.location.pod, device.location.rack)
        self._rack_counts[rack] = self._rack_counts.get(rack, 0) + 1

    def _rack_remove(self, device: Device) -> None:
        if device.location is None:
            return
        rack = (device.location.pod, device.location.rack)
        count = self._rack_counts.get(rack, 0) - 1
        if count <= 0:
            self._rack_counts.pop(rack, None)
        else:
            self._rack_counts[rack] = count

    def _on_device_failed_changed(self, device: Device) -> None:
        """Device.failed flipped (failure injection / repair): move the
        device in or out of the live aggregates and the placement index.

        The utilization integral is *not* sampled here, matching the
        naive path: a mid-interval failure changes what the next sample
        credits, exactly as the on-demand re-sum always did.
        """
        if device.seq not in self._by_seq:
            return
        if device.failed:
            self._live_capacity -= device.spec.capacity
            self._live_used -= device.used
            self._rack_remove(device)
            if self.indexed:
                self._index_remove(device)
        else:
            self._live_capacity += device.spec.capacity
            self._live_used += device.used
            self._rack_add(device)
            if self.indexed:
                self._index_add(device)

    def _account(self, device: Device, delta: float) -> None:
        """Apply a used-delta for ``device`` to the live totals + index."""
        if self._device_is_live(device):
            self._live_used += delta
            self._index_update(device)

    # -- allocation ----------------------------------------------------------

    def _candidates(
        self, amount: float, tenant: str, single_tenant: bool,
        preferred_location=None,
    ) -> List[Device]:
        """Naive reference: scan every device, sort by (local, free, seq).

        Kept verbatim as the pre-index hot path; ``indexed`` pools answer
        the same question via :meth:`_best_candidate`.
        """
        fits = [d for d in self.devices if d.can_fit(amount, tenant, single_tenant)]
        if self.admission_filter is not None:
            admitted = [d for d in fits if self.admission_filter(d)]
            # When every candidate is gated off (all breakers open), fall
            # back to the ungated list: a degraded placement beats an
            # unplaceable module.
            if admitted:
                fits = admitted
        # Best-fit: smallest sufficient free capacity limits fragmentation.
        # Locality preference dominates: devices at the preferred location
        # sort first (the scheduler's co-location mechanism, E6).
        def key(device: Device):
            local = 0 if (preferred_location is not None
                          and device.location == preferred_location) else 1
            return (local, device.free, device.seq)

        fits.sort(key=key)
        return fits

    def _best_candidate(
        self, amount: float, tenant: str, single_tenant: bool,
        preferred_location=None,
    ) -> Optional[Device]:
        """Indexed best-fit: the device minimizing (local, free, seq).

        Walks the preferred location's bucket, then the global free index,
        starting at the first entry whose free capacity can hold
        ``amount`` (same epsilon as :meth:`Device.can_fit`).  The
        admission-filter fallback matches the naive path exactly: an
        admitted device anywhere beats an unadmitted one, and only when
        *no* fitting device is admitted does the ungated order apply.
        """
        flt = self.admission_filter
        threshold = (amount - 1e-9,)
        first_fit_local: Optional[Device] = None
        if preferred_location is not None:
            bucket = self._loc_index.get(preferred_location)
            if bucket:
                for _, seq in bucket[bisect_left(bucket, threshold):]:
                    device = self._by_seq[seq]
                    if not device.can_fit(amount, tenant, single_tenant):
                        continue
                    if flt is None or flt(device):
                        # Admitted + local: nothing can sort earlier.
                        return device
                    if first_fit_local is None:
                        first_fit_local = device
        first_fit_global: Optional[Device] = None
        for _, seq in self._free_index[
                bisect_left(self._free_index, threshold):]:
            device = self._by_seq[seq]
            if preferred_location is not None \
                    and device.location == preferred_location:
                continue  # already considered in the local bucket
            if not device.can_fit(amount, tenant, single_tenant):
                continue
            if flt is None or flt(device):
                # Admitted non-local: beats any unadmitted local fit.
                return device
            if first_fit_global is None:
                first_fit_global = device
        # No fitting device is admitted: fall back to the ungated order,
        # locality first.
        return first_fit_local if first_fit_local is not None \
            else first_fit_global

    def allocate(
        self,
        amount: float,
        tenant: str,
        single_tenant: bool = False,
        preferred_location=None,
        device: Optional[Device] = None,
    ) -> Allocation:
        """Grant exactly ``amount`` units to ``tenant``.

        Raises :class:`AllocationError` when no single device can hold the
        request.  (Requests larger than one device must be split by the
        caller — the scheduler does this — because an allocation models a
        contiguous slice of one physical device.)
        """
        if amount <= 0:
            raise AllocationError(f"amount must be positive, got {amount}")
        spec = self._spec()
        if spec is not None and amount < spec.min_grain - 1e-12:
            # Round tiny requests up to the device grain, as real
            # allocators do; never bill below the grain.
            amount = spec.min_grain
        if device is not None:
            if not device.can_fit(amount, tenant, single_tenant):
                raise AllocationError(
                    f"device {device.device_id} cannot fit {amount:g} for {tenant}"
                )
            chosen = device
        else:
            if self.indexed:
                chosen = self._best_candidate(
                    amount, tenant, single_tenant, preferred_location
                )
            else:
                candidates = self._candidates(
                    amount, tenant, single_tenant, preferred_location
                )
                chosen = candidates[0] if candidates else None
            if chosen is None:
                raise AllocationError(
                    f"pool {self.device_type.value}: no device fits {amount:g} "
                    f"{self.device_type.unit} for tenant {tenant!r} "
                    f"(single_tenant={single_tenant}, free={self.total_free:g})"
                )

        self._sample()
        alloc = Allocation(
            alloc_id=f"{tenant}/{self.device_type.value}-{next(_alloc_ids)}",
            device=chosen,
            amount=amount,
            tenant=tenant,
            single_tenant=single_tenant,
            created_at=self._clock(),
        )
        delta = chosen._add_alloc(alloc.alloc_id, amount, tenant)
        self._account(chosen, delta)
        if single_tenant:
            chosen.single_tenant_of = tenant
        self._allocations[alloc.alloc_id] = alloc
        used = self.total_used
        if used > self.peak_used:
            self.peak_used = used
        if self.alloc_log is not None:
            self.alloc_log.append((chosen.seq, amount, tenant))
        return alloc

    def release(self, alloc: Allocation) -> None:
        if alloc.released:
            return
        self._sample()
        alloc.released = True
        device = alloc.device
        delta = device._remove_alloc(alloc.alloc_id, alloc.tenant)
        self._account(device, delta)
        self._allocations.pop(alloc.alloc_id, None)
        if device.single_tenant_of == alloc.tenant \
                and not device.has_tenant(alloc.tenant):
            device.single_tenant_of = None

    def resize(self, alloc: Allocation, new_amount: float) -> Allocation:
        """Grow or shrink an allocation in place (the tuner's mechanism).

        Growing beyond the device's free capacity raises
        :class:`AllocationError`; the tuner then falls back to migration.
        """
        if alloc.released:
            raise AllocationError("cannot resize a released allocation")
        if new_amount <= 0:
            raise AllocationError("new_amount must be positive")
        spec = alloc.device.spec
        new_amount = max(new_amount, spec.min_grain)
        delta = new_amount - alloc.amount
        if delta > alloc.device.free + 1e-9:
            raise AllocationError(
                f"cannot grow {alloc.alloc_id} by {delta:g}: device free is "
                f"{alloc.device.free:g}"
            )
        self._sample()
        alloc.amount = new_amount
        used_delta = alloc.device._resize_alloc(alloc.alloc_id, new_amount)
        self._account(alloc.device, used_delta)
        used = self.total_used
        if used > self.peak_used:
            self.peak_used = used
        return alloc

    def rehome(self, alloc: Allocation, target: Device) -> None:
        """Move a live allocation to ``target`` (defragmentation).

        Pool-level totals are unchanged (same pool); per-device counters,
        tenant refcounts, and the free index follow the move.
        """
        source = alloc.device
        if target is source:
            return
        delta = source._remove_alloc(alloc.alloc_id, alloc.tenant)
        self._account(source, delta)
        delta = target._add_alloc(alloc.alloc_id, alloc.amount, alloc.tenant)
        self._account(target, delta)
        alloc.device = target

    def allocations_for(self, tenant: str) -> List[Allocation]:
        return [a for a in self._allocations.values() if a.tenant == tenant]

    def collect_metrics(self, registry) -> None:
        """Snapshot this pool's capacity gauges into a MetricsRegistry.

        Collector-style (Prometheus idiom): called at scrape/snapshot
        time — never on the allocate/release hot path — so the indexed
        placement fast path pays nothing for metrics.  All values come
        from the incrementally-maintained aggregates.
        """
        labels = {"device_type": self.device_type.value}
        if self.cell is not None:
            labels["cell"] = self.cell
        registry.gauge("udc_pool_capacity_units", labels).set(
            self.total_capacity)
        registry.gauge("udc_pool_used_units", labels).set(self.total_used)
        registry.gauge("udc_pool_peak_used_units", labels).set(self.peak_used)
        registry.gauge("udc_pool_utilization", labels).set(self.utilization())
        registry.gauge("udc_pool_mean_utilization", labels).set(
            self.mean_utilization())

    def _spec(self) -> Optional[DeviceSpec]:
        return self.devices[0].spec if self.devices else None

    def check_accounting(self) -> None:
        """Assert every cached counter matches a from-scratch recompute.

        Test/benchmark hook: raises AssertionError on any drift between
        the incremental accounting and the naive definition.
        """
        for device in self.devices:
            resummed = device.recompute_used()
            assert device.used == resummed, (
                f"{device.device_id}: cached used {device.used!r} != "
                f"re-sum {resummed!r}"
            )
            tenants = {a.split("/", 1)[0] for a in device.allocations}
            assert device.tenants == tenants, (
                f"{device.device_id}: tenant refcounts {device.tenants} != "
                f"{tenants}"
            )
        live_cap = sum(d.spec.capacity for d in self.devices
                       if self._device_is_live(d))
        live_used = sum(d.recompute_used() for d in self.devices
                        if self._device_is_live(d))
        assert abs(self.total_capacity - live_cap) < 1e-9
        assert abs(self.total_used - live_used) < 1e-9
        if self.indexed:
            expected = sorted(
                (d.free, d.seq) for d in self.devices
                if self._device_is_live(d)
            )
            assert self._free_index == expected, "free index out of sync"

    def __repr__(self) -> str:
        return (
            f"ResourcePool({self.device_type.value}, devices={len(self.devices)}, "
            f"used={self.total_used:g}/{self.total_capacity:g})"
        )


@dataclass
class PoolSet:
    """The full set of pools in one datacenter, keyed by device type."""

    pools: Dict[DeviceType, ResourcePool] = field(default_factory=dict)

    def pool(self, device_type: DeviceType) -> ResourcePool:
        if device_type not in self.pools:
            raise KeyError(f"datacenter has no {device_type.value} pool")
        return self.pools[device_type]

    def __contains__(self, device_type: DeviceType) -> bool:
        return device_type in self.pools

    def __iter__(self):
        return iter(self.pools.values())

    def hourly_cost(self, tenant: str) -> float:
        """Current burn rate of all of ``tenant``'s live allocations."""
        return sum(
            alloc.hourly_cost
            for pool in self.pools.values()
            for alloc in pool.allocations_for(tenant)
        )

    def utilization_report(self) -> Dict[str, float]:
        return {
            dtype.value: pool.mean_utilization()
            for dtype, pool in sorted(self.pools.items(), key=lambda kv: kv[0].value)
        }

    def collect_metrics(self, registry) -> None:
        """Snapshot every pool's gauges (see ResourcePool.collect_metrics)."""
        for _dtype, pool in sorted(self.pools.items(),
                                   key=lambda kv: kv[0].value):
            pool.collect_metrics(registry)


def total_fragmentation(pool: ResourcePool) -> float:
    """Fraction of free capacity stranded in slices below min_grain."""
    spec = pool._spec()
    if spec is None:
        return 0.0
    stranded = sum(
        d.free for d in pool.devices
        if not d.failed and 0 < d.free < spec.min_grain
    )
    free = pool.total_free
    return stranded / free if free else 0.0


def is_amount_valid(spec: DeviceSpec, amount: float) -> bool:
    """Whether ``amount`` is a legal request against devices of ``spec``."""
    return (
        amount > 0
        and amount <= spec.capacity
        and not math.isnan(amount)
        and not math.isinf(amount)
    )
