"""Typed resource pools with exact-amount allocation.

This module realizes the paper's central mechanism (§3.2): *"Fulfilling
users' resource demands would then simply be allocating the exact amount
from the corresponding resource pools (instead of a bin-packing problem
with traditional servers)."*

A :class:`ResourcePool` owns all devices of one :class:`DeviceType`.
Allocation requests name an exact amount (possibly fractional, down to the
device's ``min_grain``), a tenant, and placement constraints (preferred
location for locality, single-tenant pinning for the security aspect).
Pools keep a time-weighted utilization integral so the disaggregation
benchmark (E2) can compare utilization against server bin-packing.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.devices import Device, DeviceSpec, DeviceType

__all__ = ["Allocation", "AllocationError", "PoolSet", "ResourcePool"]

_alloc_ids = itertools.count()


class AllocationError(Exception):
    """Raised when a pool cannot satisfy a request."""


@dataclass
class Allocation:
    """A live slice of one device granted to one tenant."""

    alloc_id: str
    device: Device
    amount: float
    tenant: str
    single_tenant: bool = False
    released: bool = False
    created_at: float = 0.0

    @property
    def device_type(self) -> DeviceType:
        return self.device.device_type

    @property
    def hourly_cost(self) -> float:
        """On-demand cost of holding this allocation for one hour.

        Single-tenant allocations are billed for the whole device — the
        stranded remainder cannot be sold to anyone else (§3.3's "large
        resource wastes" caveat), which E4 quantifies.
        """
        billed = self.device.spec.capacity if self.single_tenant else self.amount
        return billed * self.device.spec.unit_price_hour


class ResourcePool:
    """All devices of one type, with allocation and utilization telemetry."""

    def __init__(self, device_type: DeviceType, clock=None):
        self.device_type = device_type
        self.devices: List[Device] = []
        self._allocations: Dict[str, Allocation] = {}
        #: callable returning current time; wired to Simulator.now by the
        #: datacenter builder.  Defaults to a frozen clock for unit tests.
        self._clock = clock or (lambda: 0.0)
        self._last_sample_time = 0.0
        self._used_time_integral = 0.0  # ∫ used(t) dt
        self.peak_used = 0.0
        #: Optional predicate applied to candidate devices during
        #: auto-placement; the runtime wires this to its circuit-breaker
        #: registry so tripped devices are skipped.  Explicit ``device=``
        #: requests (standby failover, migration) bypass it.
        self.admission_filter = None

    # -- construction ------------------------------------------------------

    def add_device(self, device: Device) -> None:
        if device.device_type != self.device_type:
            raise ValueError(
                f"device {device.device_id} is {device.device_type}, "
                f"pool is {self.device_type}"
            )
        self.devices.append(device)

    # -- capacity accounting -------------------------------------------------

    @property
    def total_capacity(self) -> float:
        return sum(d.spec.capacity for d in self.devices if not d.failed)

    @property
    def total_used(self) -> float:
        return sum(d.used for d in self.devices if not d.failed)

    @property
    def total_free(self) -> float:
        return self.total_capacity - self.total_used

    def utilization(self) -> float:
        """Instantaneous fraction of live capacity in use."""
        cap = self.total_capacity
        return self.total_used / cap if cap else 0.0

    def _sample(self) -> None:
        now = self._clock()
        dt = now - self._last_sample_time
        if dt > 0:
            self._used_time_integral += self.total_used * dt
            self._last_sample_time = now

    def mean_utilization(self) -> float:
        """Time-weighted mean utilization since pool creation."""
        self._sample()
        elapsed = self._last_sample_time
        cap = self.total_capacity
        if elapsed <= 0 or cap <= 0:
            return self.utilization()
        return self._used_time_integral / (elapsed * cap)

    # -- allocation ----------------------------------------------------------

    def _candidates(
        self, amount: float, tenant: str, single_tenant: bool,
        preferred_location=None,
    ) -> List[Device]:
        fits = [d for d in self.devices if d.can_fit(amount, tenant, single_tenant)]
        if self.admission_filter is not None:
            admitted = [d for d in fits if self.admission_filter(d)]
            # When every candidate is gated off (all breakers open), fall
            # back to the ungated list: a degraded placement beats an
            # unplaceable module.
            if admitted:
                fits = admitted
        # Best-fit: smallest sufficient free capacity limits fragmentation.
        # Locality preference dominates: devices at the preferred location
        # sort first (the scheduler's co-location mechanism, E6).
        def key(device: Device):
            local = 0 if (preferred_location is not None
                          and device.location == preferred_location) else 1
            return (local, device.free, device.seq)

        fits.sort(key=key)
        return fits

    def allocate(
        self,
        amount: float,
        tenant: str,
        single_tenant: bool = False,
        preferred_location=None,
        device: Optional[Device] = None,
    ) -> Allocation:
        """Grant exactly ``amount`` units to ``tenant``.

        Raises :class:`AllocationError` when no single device can hold the
        request.  (Requests larger than one device must be split by the
        caller — the scheduler does this — because an allocation models a
        contiguous slice of one physical device.)
        """
        if amount <= 0:
            raise AllocationError(f"amount must be positive, got {amount}")
        spec = self._spec()
        if spec is not None and amount < spec.min_grain - 1e-12:
            # Round tiny requests up to the device grain, as real
            # allocators do; never bill below the grain.
            amount = spec.min_grain
        if device is not None:
            if not device.can_fit(amount, tenant, single_tenant):
                raise AllocationError(
                    f"device {device.device_id} cannot fit {amount:g} for {tenant}"
                )
            chosen = device
        else:
            candidates = self._candidates(
                amount, tenant, single_tenant, preferred_location
            )
            if not candidates:
                raise AllocationError(
                    f"pool {self.device_type.value}: no device fits {amount:g} "
                    f"{self.device_type.unit} for tenant {tenant!r} "
                    f"(single_tenant={single_tenant}, free={self.total_free:g})"
                )
            chosen = candidates[0]

        self._sample()
        alloc = Allocation(
            alloc_id=f"{tenant}/{self.device_type.value}-{next(_alloc_ids)}",
            device=chosen,
            amount=amount,
            tenant=tenant,
            single_tenant=single_tenant,
            created_at=self._clock(),
        )
        chosen.allocations[alloc.alloc_id] = amount
        if single_tenant:
            chosen.single_tenant_of = tenant
        self._allocations[alloc.alloc_id] = alloc
        self.peak_used = max(self.peak_used, self.total_used)
        return alloc

    def release(self, alloc: Allocation) -> None:
        if alloc.released:
            return
        self._sample()
        alloc.released = True
        alloc.device.allocations.pop(alloc.alloc_id, None)
        self._allocations.pop(alloc.alloc_id, None)
        if alloc.device.single_tenant_of == alloc.tenant and not any(
            a.split("/", 1)[0] == alloc.tenant for a in alloc.device.allocations
        ):
            alloc.device.single_tenant_of = None

    def resize(self, alloc: Allocation, new_amount: float) -> Allocation:
        """Grow or shrink an allocation in place (the tuner's mechanism).

        Growing beyond the device's free capacity raises
        :class:`AllocationError`; the tuner then falls back to migration.
        """
        if alloc.released:
            raise AllocationError("cannot resize a released allocation")
        if new_amount <= 0:
            raise AllocationError("new_amount must be positive")
        spec = alloc.device.spec
        new_amount = max(new_amount, spec.min_grain)
        delta = new_amount - alloc.amount
        if delta > alloc.device.free + 1e-9:
            raise AllocationError(
                f"cannot grow {alloc.alloc_id} by {delta:g}: device free is "
                f"{alloc.device.free:g}"
            )
        self._sample()
        alloc.amount = new_amount
        alloc.device.allocations[alloc.alloc_id] = new_amount
        self.peak_used = max(self.peak_used, self.total_used)
        return alloc

    def allocations_for(self, tenant: str) -> List[Allocation]:
        return [a for a in self._allocations.values() if a.tenant == tenant]

    def _spec(self) -> Optional[DeviceSpec]:
        return self.devices[0].spec if self.devices else None

    def __repr__(self) -> str:
        return (
            f"ResourcePool({self.device_type.value}, devices={len(self.devices)}, "
            f"used={self.total_used:g}/{self.total_capacity:g})"
        )


@dataclass
class PoolSet:
    """The full set of pools in one datacenter, keyed by device type."""

    pools: Dict[DeviceType, ResourcePool] = field(default_factory=dict)

    def pool(self, device_type: DeviceType) -> ResourcePool:
        if device_type not in self.pools:
            raise KeyError(f"datacenter has no {device_type.value} pool")
        return self.pools[device_type]

    def __contains__(self, device_type: DeviceType) -> bool:
        return device_type in self.pools

    def __iter__(self):
        return iter(self.pools.values())

    def hourly_cost(self, tenant: str) -> float:
        """Current burn rate of all of ``tenant``'s live allocations."""
        return sum(
            alloc.hourly_cost
            for pool in self.pools.values()
            for alloc in pool.allocations_for(tenant)
        )

    def utilization_report(self) -> Dict[str, float]:
        return {
            dtype.value: pool.mean_utilization()
            for dtype, pool in sorted(self.pools.items(), key=lambda kv: kv[0].value)
        }


def total_fragmentation(pool: ResourcePool) -> float:
    """Fraction of free capacity stranded in slices below min_grain."""
    spec = pool._spec()
    if spec is None:
        return 0.0
    stranded = sum(
        d.free for d in pool.devices
        if not d.failed and 0 < d.free < spec.min_grain
    )
    free = pool.total_free
    return stranded / free if free else 0.0


def is_amount_valid(spec: DeviceSpec, amount: float) -> bool:
    """Whether ``amount`` is a legal request against devices of ``spec``."""
    return (
        amount > 0
        and amount <= spec.capacity
        and not math.isnan(amount)
        and not math.isinf(amount)
    )
