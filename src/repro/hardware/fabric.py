"""Datacenter network fabric model.

Disaggregation makes the network the backplane: every module-to-module
message and every access from a compute device to a memory/storage device
crosses the fabric.  The model is a standard three-tier latency hierarchy
(same device < same rack < same pod < cross-pod) with per-transfer
serialization time ``bytes / bandwidth``.

The fabric also hosts *in-network programmability* (§3.4): a
:class:`~repro.distsem.network_order.SwitchSequencer` can be attached to a
switch location so that messages routed through it acquire a global
sequence number in-flight (the NOPaxos-style design the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.simulator.engine import Event, Simulator

__all__ = ["Fabric", "FabricStats", "Location", "Message"]


@dataclass(frozen=True, order=True)
class Location:
    """Position of a device in the topology: (pod, rack, slot)."""

    pod: int
    rack: int
    slot: int = 0

    def same_rack(self, other: "Location") -> bool:
        return self.pod == other.pod and self.rack == other.rack

    def same_pod(self, other: "Location") -> bool:
        return self.pod == other.pod

    def __str__(self) -> str:
        return f"p{self.pod}r{self.rack}s{self.slot}"


@dataclass
class Message:
    """A payload in flight on the fabric."""

    src: Location
    dst: Location
    size_bytes: int
    payload: object = None
    #: filled by a switch sequencer if the message was routed through one
    sequence: Optional[int] = None


@dataclass
class FabricStats:
    """Aggregate traffic counters, consumed by the locality benchmark (E6)."""

    messages: int = 0
    bytes_total: int = 0
    bytes_cross_rack: int = 0
    bytes_cross_pod: int = 0
    by_hop: Dict[str, int] = field(default_factory=dict)


class Fabric:
    """Latency/bandwidth model between :class:`Location` pairs.

    Latency parameters default to plausible 2021 datacenter numbers
    (intra-rack ~2us, cross-rack ~6us, cross-pod ~18us RTT/2); bandwidth is
    per-NIC and shared only in the sense of serialization delay (no queueing
    model — the claims under test do not depend on congestion).
    """

    def __init__(
        self,
        sim: Simulator,
        intra_rack_latency_s: float = 2e-6,
        cross_rack_latency_s: float = 6e-6,
        cross_pod_latency_s: float = 18e-6,
        link_bandwidth_gbps: float = 100.0,
    ):
        self.sim = sim
        self.intra_rack_latency_s = intra_rack_latency_s
        self.cross_rack_latency_s = cross_rack_latency_s
        self.cross_pod_latency_s = cross_pod_latency_s
        self.link_bandwidth_gbps = link_bandwidth_gbps
        self.stats = FabricStats()
        #: sequencer hook keyed by switch location (see network_order)
        self._sequencers: Dict[Location, Callable[[Message], None]] = {}
        #: gray partitions: severed (pod, rack) pairs -> stall seconds added
        #: to every transfer crossing the cut (E22 chaos harness)
        self._partitions: Dict[frozenset, float] = {}

    # -- partitions (gray failure, E22) -------------------------------------

    @staticmethod
    def _rack_key(loc: Location) -> Tuple[int, int]:
        return (loc.pod, loc.rack)

    def sever(self, a: Location, b: Location, stall_s: float = 30.0) -> None:
        """Partition the racks containing ``a`` and ``b``.

        This models a *gray* partition: traffic across the cut is not
        dropped but stalls for ``stall_s`` per transfer (retransmit and
        reroute delay) — the degraded-but-alive behavior that makes gray
        failures harder than crash-stop.
        """
        key = frozenset({self._rack_key(a), self._rack_key(b)})
        if len(key) < 2:
            raise ValueError("cannot partition a rack from itself")
        if stall_s <= 0:
            raise ValueError(f"stall_s must be positive, got {stall_s}")
        self._partitions[key] = stall_s

    def heal_partition(self, a: Location, b: Location) -> None:
        key = frozenset({self._rack_key(a), self._rack_key(b)})
        self._partitions.pop(key, None)

    def partition_stall(self, src: Location, dst: Location) -> float:
        """Stall seconds a transfer from src to dst currently pays."""
        if not self._partitions or src == dst:
            return 0.0
        key = frozenset({self._rack_key(src), self._rack_key(dst)})
        return self._partitions.get(key, 0.0) if len(key) == 2 else 0.0

    # -- timing model --------------------------------------------------------

    def hop_kind(self, src: Location, dst: Location) -> str:
        if src == dst:
            return "local"
        if src.same_rack(dst):
            return "rack"
        if src.same_pod(dst):
            return "pod"
        return "dc"

    def latency(self, src: Location, dst: Location) -> float:
        kind = self.hop_kind(src, dst)
        if kind == "local":
            return 0.0
        if kind == "rack":
            return self.intra_rack_latency_s
        if kind == "pod":
            return self.cross_rack_latency_s
        return self.cross_pod_latency_s

    def serialization_time(self, size_bytes: int) -> float:
        bits = size_bytes * 8
        return bits / (self.link_bandwidth_gbps * 1e9)

    def transfer_time(self, src: Location, dst: Location, size_bytes: int) -> float:
        """One-way delivery time for ``size_bytes`` from src to dst."""
        if src == dst:
            return 0.0
        return (
            self.latency(src, dst)
            + self.serialization_time(size_bytes)
            + self.partition_stall(src, dst)
        )

    # -- transfer API ----------------------------------------------------------

    def send(
        self,
        src: Location,
        dst: Location,
        size_bytes: int,
        payload: object = None,
        via: Optional[Location] = None,
    ) -> Event:
        """Send a message; the returned event fires with the delivered
        :class:`Message` after the modeled delay.

        ``via`` optionally routes through an intermediate switch location
        (used for in-network sequencing); the message then pays both hops
        and any attached sequencer stamps it in flight.
        """
        message = Message(src=src, dst=dst, size_bytes=size_bytes, payload=payload)
        if via is not None:
            delay = self.transfer_time(src, via, size_bytes) + self.transfer_time(
                via, dst, size_bytes
            )
            sequencer = self._sequencers.get(via)
            if sequencer is not None:
                sequencer(message)
        else:
            delay = self.transfer_time(src, dst, size_bytes)
        self._record(message, via)
        return self.sim.timeout(delay, value=message)

    def attach_sequencer(
        self, switch_location: Location, stamp: Callable[[Message], None]
    ) -> None:
        """Install an in-network sequencer at ``switch_location``."""
        self._sequencers[switch_location] = stamp

    def multicast_via(
        self,
        src: Location,
        dsts: List[Location],
        size_bytes: int,
        payload: object = None,
        via: Optional[Location] = None,
    ) -> List[Event]:
        """Ordered multicast: ONE stamp per logical operation.

        The switch stamps the group send once and every copy carries the
        same sequence number — this is the NOPaxos property that makes
        in-network ordering work (per-copy stamping would give each
        replica a different number for the same write).
        """
        if not dsts:
            raise ValueError("multicast_via requires at least one destination")
        group_sequence: Optional[int] = None
        if via is not None:
            sequencer = self._sequencers.get(via)
            if sequencer is not None:
                probe = Message(src=src, dst=dsts[0], size_bytes=size_bytes,
                                payload=payload)
                sequencer(probe)
                group_sequence = probe.sequence
        events = []
        for dst in dsts:
            message = Message(
                src=src, dst=dst, size_bytes=size_bytes, payload=payload,
                sequence=group_sequence,
            )
            if via is not None:
                delay = self.transfer_time(src, via, size_bytes) \
                    + self.transfer_time(via, dst, size_bytes)
            else:
                delay = self.transfer_time(src, dst, size_bytes)
            self._record(message, via)
            events.append(self.sim.timeout(delay, value=message))
        return events

    # -- accounting -------------------------------------------------------------

    def _record(self, message: Message, via: Optional[Location]) -> None:
        stats = self.stats
        stats.messages += 1
        stats.bytes_total += message.size_bytes
        kind = self.hop_kind(message.src, message.dst)
        stats.by_hop[kind] = stats.by_hop.get(kind, 0) + 1
        if kind in ("pod", "dc"):
            stats.bytes_cross_rack += message.size_bytes
        if kind == "dc":
            stats.bytes_cross_pod += message.size_bytes

    def multicast(
        self, src: Location, dsts: List[Location], size_bytes: int, payload=None
    ) -> List[Event]:
        """Convenience: independent sends to each destination."""
        return [self.send(src, d, size_bytes, payload) for d in dsts]


def transfer_plan_cost(
    fabric: Fabric, moves: List[Tuple[Location, Location, int]]
) -> float:
    """Total serialized transfer time of a batch of (src, dst, bytes) moves.

    Used by the scheduler to score candidate placements without actually
    scheduling the transfers.
    """
    return sum(fabric.transfer_time(src, dst, size) for src, dst, size in moves)
