"""Traditional monolithic servers and bin-packing allocation.

This is the *baseline substrate* the paper argues against: resources come
welded together into server boxes, so placing a workload is a
multi-dimensional bin-packing problem and any dimension that fills first
strands the others (a memory-heavy job leaves cores idle and vice versa).
The disaggregation benchmark (E2) packs identical workload mixes onto
servers here and onto pools in :mod:`repro.hardware.pools`, then compares
utilization — the paper's §4 cites LegoOS's ~2x improvement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Placement", "Server", "ServerCluster", "ServerSpec", "WorkloadDemand"]

_server_ids = itertools.count()


@dataclass(frozen=True)
class ServerSpec:
    """Fixed resource bundle of one server model."""

    cpus: float
    mem_gb: float
    gpus: float = 0.0
    storage_gb: float = 0.0
    name: str = "server"

    def dimensions(self) -> Dict[str, float]:
        return {
            "cpus": self.cpus,
            "mem_gb": self.mem_gb,
            "gpus": self.gpus,
            "storage_gb": self.storage_gb,
        }


@dataclass(frozen=True)
class WorkloadDemand:
    """A workload's exact multi-dimensional demand.

    ``duty`` is the fraction of the provisioned demand the job actually
    keeps busy over time (jobs provision for peak; Flexera-style waste
    counts the idle remainder).  Packing always reserves the full demand;
    billing models differ in whether they can reclaim the slack.
    """

    cpus: float = 0.0
    mem_gb: float = 0.0
    gpus: float = 0.0
    storage_gb: float = 0.0
    duty: float = 1.0
    name: str = "job"

    def __post_init__(self):
        if not 0.0 < self.duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {self.duty}")

    def dimensions(self) -> Dict[str, float]:
        return {
            "cpus": self.cpus,
            "mem_gb": self.mem_gb,
            "gpus": self.gpus,
            "storage_gb": self.storage_gb,
        }

    def dominant_size(self, spec: ServerSpec) -> float:
        """Largest demand fraction across dimensions (for FFD ordering)."""
        fractions = []
        for dim, need in self.dimensions().items():
            cap = spec.dimensions()[dim]
            if need > 0:
                fractions.append(need / cap if cap else float("inf"))
        return max(fractions) if fractions else 0.0


@dataclass
class Server:
    """One server with residual capacity per dimension."""

    spec: ServerSpec
    server_id: str = field(default="")
    residual: Dict[str, float] = field(default_factory=dict)
    placed: List[WorkloadDemand] = field(default_factory=list)

    def __post_init__(self):
        if not self.server_id:
            self.server_id = f"{self.spec.name}-{next(_server_ids)}"
        if not self.residual:
            self.residual = dict(self.spec.dimensions())

    def fits(self, demand: WorkloadDemand) -> bool:
        return all(
            self.residual[dim] + 1e-9 >= need
            for dim, need in demand.dimensions().items()
        )

    def place(self, demand: WorkloadDemand) -> None:
        if not self.fits(demand):
            raise ValueError(f"{demand.name} does not fit on {self.server_id}")
        for dim, need in demand.dimensions().items():
            self.residual[dim] -= need
        self.placed.append(demand)

    def used(self, dim: str) -> float:
        return self.spec.dimensions()[dim] - self.residual[dim]


@dataclass
class Placement:
    """Result of packing a workload set onto a cluster."""

    servers_used: int
    assignments: List[Tuple[WorkloadDemand, Server]]
    unplaced: List[WorkloadDemand]


class ServerCluster:
    """A homogeneous cluster with first-fit-decreasing bin packing.

    FFD on the dominant dimension is the standard practical heuristic
    (within 11/9 OPT for one dimension); using a decent baseline packer
    keeps E2 honest — the utilization gap must come from disaggregation,
    not from a strawman packing algorithm.
    """

    def __init__(self, spec: ServerSpec, max_servers: Optional[int] = None):
        self.spec = spec
        self.max_servers = max_servers
        self.servers: List[Server] = []

    def pack(self, demands: List[WorkloadDemand]) -> Placement:
        """First-fit-decreasing placement; opens servers on demand."""
        ordered = sorted(
            demands, key=lambda d: d.dominant_size(self.spec), reverse=True
        )
        assignments: List[Tuple[WorkloadDemand, Server]] = []
        unplaced: List[WorkloadDemand] = []
        for demand in ordered:
            if demand.dominant_size(self.spec) > 1.0:
                unplaced.append(demand)  # cannot fit on any single server
                continue
            target = next((s for s in self.servers if s.fits(demand)), None)
            if target is None:
                if self.max_servers is not None and len(self.servers) >= self.max_servers:
                    unplaced.append(demand)
                    continue
                target = Server(spec=self.spec)
                self.servers.append(target)
            target.place(demand)
            assignments.append((demand, target))
        return Placement(
            servers_used=len(self.servers),
            assignments=assignments,
            unplaced=unplaced,
        )

    def utilization(self, dim: str) -> float:
        """Mean utilization of one dimension across opened servers."""
        if not self.servers:
            return 0.0
        cap = self.spec.dimensions()[dim] * len(self.servers)
        if cap == 0:
            return 0.0
        used = sum(s.used(dim) for s in self.servers)
        return used / cap

    def overall_utilization(self) -> float:
        """Mean across dimensions that the server actually provides."""
        dims = [d for d, cap in self.spec.dimensions().items() if cap > 0]
        utils = [self.utilization(d) for d in dims]
        return sum(utils) / len(utils) if utils else 0.0

    def demanded_utilization(self) -> float:
        """Mean utilization over only the dimensions any placed job demands.

        Excluding never-demanded dimensions (e.g. GPUs in a CPU-only mix)
        avoids inflating the disaggregation win.
        """
        demanded = {
            dim
            for server in self.servers
            for job in server.placed
            for dim, need in job.dimensions().items()
            if need > 0
        }
        dims = [d for d in demanded if self.spec.dimensions()[d] > 0]
        if not dims:
            return 0.0
        return sum(self.utilization(d) for d in dims) / len(dims)
