"""Device taxonomy for the disaggregated datacenter.

Each *device* is one network-attached unit of a single resource type — a
CPU blade, a GPU board, a DRAM sled, an SSD shelf.  Devices expose a scalar
``capacity`` in type-specific units (cores, GPUs, GB, ...) that the pool
allocator carves into exact-amount :class:`~repro.hardware.pools.Allocation`
slices — the heart of the paper's "allocate the exact amount from the
corresponding resource pool" argument (§3.2).

Performance attributes are calibrated to be *relatively* plausible (a GPU
does ~40x the dense math of a CPU core; NVM is slower but denser than DRAM)
— the benchmarks depend only on these relative shapes, never on absolute
wall-clock realism.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Device", "DeviceClass", "DeviceSpec", "DeviceType", "DEFAULT_SPECS"]


class DeviceClass(enum.Enum):
    """Coarse role of a device type; the pool set is organized by type,
    but schedulers reason about classes (e.g. "any compute")."""

    COMPUTE = "compute"
    MEMORY = "memory"
    STORAGE = "storage"
    NETWORK = "network"


class DeviceType(enum.Enum):
    """Concrete hardware kinds named in the paper (§1, §3.2, §3.3)."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    TPU = "tpu"
    ASIC = "asic"
    DRAM = "dram"
    NVM = "nvm"
    SSD = "ssd"
    HDD = "hdd"
    SMARTNIC = "smartnic"
    SWITCH = "switch"

    @property
    def device_class(self) -> DeviceClass:
        return _DEVICE_CLASS[self]

    @property
    def unit(self) -> str:
        """Human-readable allocation unit for this type."""
        return _DEVICE_UNIT[self]


_DEVICE_CLASS = {
    DeviceType.CPU: DeviceClass.COMPUTE,
    DeviceType.GPU: DeviceClass.COMPUTE,
    DeviceType.FPGA: DeviceClass.COMPUTE,
    DeviceType.TPU: DeviceClass.COMPUTE,
    DeviceType.ASIC: DeviceClass.COMPUTE,
    DeviceType.DRAM: DeviceClass.MEMORY,
    DeviceType.NVM: DeviceClass.MEMORY,
    DeviceType.SSD: DeviceClass.STORAGE,
    DeviceType.HDD: DeviceClass.STORAGE,
    DeviceType.SMARTNIC: DeviceClass.NETWORK,
    DeviceType.SWITCH: DeviceClass.NETWORK,
}

_DEVICE_UNIT = {
    DeviceType.CPU: "cores",
    DeviceType.GPU: "gpus",
    DeviceType.FPGA: "boards",
    DeviceType.TPU: "chips",
    DeviceType.ASIC: "chips",
    DeviceType.DRAM: "GB",
    DeviceType.NVM: "GB",
    DeviceType.SSD: "GB",
    DeviceType.HDD: "GB",
    DeviceType.SMARTNIC: "ports",
    DeviceType.SWITCH: "ports",
}


@dataclass(frozen=True)
class DeviceSpec:
    """Static characteristics of one device model.

    Attributes:
        device_type: what kind of hardware this is.
        capacity: allocatable amount per device, in ``device_type.unit``.
        compute_rate: abstract work units per second *per allocation unit*
            (only meaningful for compute classes).
        bandwidth_gbps: sequential access bandwidth per device (memory and
            storage classes) or link bandwidth (network class).
        access_latency_s: per-operation access latency (memory/storage).
        unit_price_hour: on-demand price charged per allocation unit-hour;
            the economics model (C10) scales this.
        min_grain: smallest allocatable slice (e.g. 0.25 core).
        attestable: whether the device carries a hardware root of trust
            usable for remote attestation (§4).
    """

    device_type: DeviceType
    capacity: float
    compute_rate: float = 0.0
    bandwidth_gbps: float = 0.0
    access_latency_s: float = 0.0
    unit_price_hour: float = 0.0
    min_grain: float = 1.0
    attestable: bool = False
    model: str = ""

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if self.min_grain <= 0 or self.min_grain > self.capacity:
            raise ValueError(f"invalid min_grain {self.min_grain}")


#: Reference specs used by the default datacenter builder.  Rates are
#: abstract "work units"; prices loosely track 2021 public-cloud unit
#: economics (a vCPU-hour ~ $0.05, a V100-hour ~ $3).
DEFAULT_SPECS: Dict[DeviceType, DeviceSpec] = {
    DeviceType.CPU: DeviceSpec(
        DeviceType.CPU, capacity=32, compute_rate=1.0, unit_price_hour=0.048,
        min_grain=0.25, attestable=True, model="xeon-blade-32c",
    ),
    DeviceType.GPU: DeviceSpec(
        DeviceType.GPU, capacity=8, compute_rate=40.0, unit_price_hour=3.06,
        min_grain=1.0, attestable=False, model="v100-board-8g",
    ),
    DeviceType.FPGA: DeviceSpec(
        DeviceType.FPGA, capacity=4, compute_rate=12.0, unit_price_hour=1.65,
        min_grain=1.0, attestable=False, model="fpga-sled-4b",
    ),
    DeviceType.TPU: DeviceSpec(
        DeviceType.TPU, capacity=4, compute_rate=60.0, unit_price_hour=4.50,
        min_grain=1.0, attestable=False, model="tpu-sled-4c",
    ),
    DeviceType.ASIC: DeviceSpec(
        DeviceType.ASIC, capacity=8, compute_rate=25.0, unit_price_hour=1.10,
        min_grain=1.0, attestable=False, model="asic-sled-8c",
    ),
    DeviceType.DRAM: DeviceSpec(
        DeviceType.DRAM, capacity=512, bandwidth_gbps=100.0,
        access_latency_s=2e-7, unit_price_hour=0.005, min_grain=0.5,
        attestable=False, model="dram-sled-512g",
    ),
    DeviceType.NVM: DeviceSpec(
        DeviceType.NVM, capacity=2048, bandwidth_gbps=8.0,
        access_latency_s=1e-6, unit_price_hour=0.0012, min_grain=1.0,
        attestable=False, model="optane-sled-2t",
    ),
    DeviceType.SSD: DeviceSpec(
        DeviceType.SSD, capacity=8192, bandwidth_gbps=3.0,
        access_latency_s=8e-5, unit_price_hour=0.00014, min_grain=1.0,
        attestable=False, model="nvme-shelf-8t",
    ),
    DeviceType.HDD: DeviceSpec(
        DeviceType.HDD, capacity=32768, bandwidth_gbps=0.2,
        access_latency_s=8e-3, unit_price_hour=0.00004, min_grain=1.0,
        attestable=False, model="hdd-shelf-32t",
    ),
    DeviceType.SMARTNIC: DeviceSpec(
        DeviceType.SMARTNIC, capacity=8, compute_rate=2.0,
        bandwidth_gbps=100.0, unit_price_hour=0.02, min_grain=1.0,
        attestable=False, model="smartnic-100g",
    ),
    DeviceType.SWITCH: DeviceSpec(
        DeviceType.SWITCH, capacity=64, bandwidth_gbps=100.0,
        unit_price_hour=0.001, min_grain=1.0, attestable=False,
        model="tofino-64p",
    ),
}

_device_ids = itertools.count()


@dataclass
class Device:
    """A physical device instance placed at a location in the datacenter."""

    spec: DeviceSpec
    location: "object" = None  # Location; typed loosely to avoid an import cycle
    device_id: str = field(default="")
    #: True while the device has failed (failure injection, E14).
    failed: bool = False
    #: Compute-time multiplier while the device is degraded (gray
    #: straggler failure, E22).  1.0 = healthy; 8.0 = chunks take 8x.
    slow_factor: float = 1.0
    #: Per-allocation amounts currently held on this device.
    allocations: Dict[str, float] = field(default_factory=dict)
    #: True while the device is pinned to a single tenant (§3.3).
    single_tenant_of: Optional[str] = None
    #: Creation order within this process; used as a deterministic sort
    #: tiebreaker (device_id strings don't sort numerically: "cpu-9" >
    #: "cpu-10", and the global counter makes the string order depend on
    #: how many datacenters were built earlier in the process).
    seq: int = field(default=-1)

    def __post_init__(self):
        if self.seq < 0:
            self.seq = next(_device_ids)
        if not self.device_id:
            self.device_id = f"{self.spec.device_type.value}-{self.seq}"
        #: pools this device is registered with; capacity-affecting state
        #: changes (``failed`` flips) notify them so pool-level accounting
        #: and placement indexes stay incremental instead of re-scanned.
        self._pools = []
        self._used = float(sum(self.allocations.values()))
        #: tenant id -> live allocation count, maintained by the pool's
        #: allocate/release/rehome paths (alloc ids are ``tenant/...``).
        self._tenant_refs: Dict[str, int] = {}
        for alloc_id in self.allocations:
            tenant = alloc_id.split("/", 1)[0]
            self._tenant_refs[tenant] = self._tenant_refs.get(tenant, 0) + 1

    def __setattr__(self, name, value):
        # ``failed`` is flipped directly by failure domains and tests; the
        # hook keeps registered pools' live-capacity counters and free
        # indexes correct without those callers knowing about pools.
        if name == "failed":
            old = getattr(self, "failed", None)
            object.__setattr__(self, name, value)
            if old is not None and old != bool(value):
                for pool in getattr(self, "_pools", ()):
                    pool._on_device_failed_changed(self)
            return
        object.__setattr__(self, name, value)

    def _register_pool(self, pool) -> None:
        if pool not in self._pools:
            self._pools.append(pool)

    @property
    def device_type(self) -> DeviceType:
        return self.spec.device_type

    @property
    def used(self) -> float:
        return self._used

    @property
    def free(self) -> float:
        return self.spec.capacity - self._used

    def recompute_used(self) -> float:
        """O(allocations) re-sum — the pre-index accounting, kept for the
        naive reference path and as the invariant the cache must match."""
        return sum(self.allocations.values())

    @property
    def tenants(self) -> set:
        """Tenant ids currently holding allocations."""
        return set(self._tenant_refs)

    def has_other_tenant(self, tenant: str) -> bool:
        return any(t != tenant for t in self._tenant_refs)

    def has_tenant(self, tenant: str) -> bool:
        return tenant in self._tenant_refs

    # -- allocation bookkeeping (called by ResourcePool only) ----------------

    def _add_alloc(self, alloc_id: str, amount: float, tenant: str) -> float:
        """Record a new slice; returns the used-delta (== amount).

        Incremental add matches ``sum()`` exactly because dicts preserve
        insertion order: the cache is always the same left-to-right sum a
        re-scan would produce.
        """
        self.allocations[alloc_id] = amount
        self._used += amount
        self._tenant_refs[tenant] = self._tenant_refs.get(tenant, 0) + 1
        return amount

    def _remove_alloc(self, alloc_id: str, tenant: str) -> float:
        """Drop a slice; returns the (negative) used-delta.

        Removal re-sums the remaining dict so the cache never drifts from
        ``recompute_used()`` — float subtraction is not exact, re-summing
        the survivors is.
        """
        amount = self.allocations.pop(alloc_id, None)
        if amount is None:
            return 0.0
        old = self._used
        self._used = float(sum(self.allocations.values())) if self.allocations else 0.0
        refs = self._tenant_refs.get(tenant, 0) - 1
        if refs <= 0:
            self._tenant_refs.pop(tenant, None)
        else:
            self._tenant_refs[tenant] = refs
        return self._used - old

    def _resize_alloc(self, alloc_id: str, new_amount: float) -> float:
        """Change a slice's amount in place; returns the used-delta."""
        if alloc_id not in self.allocations:
            return 0.0
        self.allocations[alloc_id] = new_amount
        old = self._used
        self._used = float(sum(self.allocations.values()))
        return self._used - old

    def can_fit(self, amount: float, tenant: str, single_tenant: bool) -> bool:
        """Whether ``amount`` for ``tenant`` can be placed here, honoring
        single-tenant pinning in both directions."""
        if self.failed or amount > self.spec.capacity - self._used + 1e-9:
            return False
        if self.single_tenant_of is not None and self.single_tenant_of != tenant:
            return False
        if single_tenant and self.has_other_tenant(tenant):
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"Device({self.device_id}, used={self.used:g}/{self.spec.capacity:g} "
            f"{self.device_type.unit})"
        )
