"""Disaggregated hardware substrate.

The paper's §3.2 identifies *hardware resource disaggregation* as the right
substrate for UDC: traditional servers are split into network-attached,
typed device pools, and fulfilling a user's resource aspect becomes exact
allocation from the matching pool instead of a bin-packing problem.

This package models that substrate:

* :mod:`~repro.hardware.devices` — device taxonomy (CPU, GPU, FPGA, TPU,
  ASIC, DRAM, NVM, SSD, HDD, SmartNIC, switch) with per-unit performance
  and price attributes;
* :mod:`~repro.hardware.pools` — typed resource pools with exact-amount
  allocation and time-weighted utilization telemetry;
* :mod:`~repro.hardware.topology` — racks/pods/datacenter builder;
* :mod:`~repro.hardware.fabric` — latency/bandwidth network model between
  locations, used for message and data-transfer timing;
* :mod:`~repro.hardware.server` — traditional monolithic servers with a
  bin-packing allocator (the baseline UDC is compared against);
* :mod:`~repro.hardware.catalog` — an EC2-like instance catalog with the
  real 2021 shapes/prices the paper's §1 example cites (p3.16xlarge etc.).
"""

from repro.hardware.catalog import InstanceCatalog, InstanceType, default_catalog
from repro.hardware.devices import Device, DeviceClass, DeviceSpec, DeviceType
from repro.hardware.fabric import Fabric, Location
from repro.hardware.pools import Allocation, PoolSet, ResourcePool
from repro.hardware.server import Server, ServerCluster, ServerSpec
from repro.hardware.topology import Datacenter, DatacenterSpec, build_datacenter

__all__ = [
    "Allocation",
    "Datacenter",
    "DatacenterSpec",
    "Device",
    "DeviceClass",
    "DeviceSpec",
    "DeviceType",
    "Fabric",
    "InstanceCatalog",
    "InstanceType",
    "Location",
    "PoolSet",
    "ResourcePool",
    "Server",
    "ServerCluster",
    "ServerSpec",
    "build_datacenter",
    "default_catalog",
]
