"""The provider-dictated IaaS baseline (paper §1).

Every workload must rent a *whole instance* from the fixed catalog — the
cheapest one whose shape covers the demand in every dimension.  The gap
between what is paid and what is used is the paper's C1 claim (~35% of
spend wasted); the 8-GPU example (p3.16xlarge forcing 64 vCPUs) is C2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.catalog import UNIT_PRICES, InstanceCatalog, InstanceType
from repro.hardware.server import WorkloadDemand

__all__ = ["IaasAllocation", "IaasCloud"]


@dataclass(frozen=True)
class IaasAllocation:
    """One workload bound to one rented instance."""

    demand: WorkloadDemand
    instance: InstanceType

    @property
    def hourly_cost(self) -> float:
        return self.instance.price_hour

    @property
    def used_value_hour(self) -> float:
        """Unit-price value of the capacity the demand actually uses —
        its provisioned shape scaled by its duty factor."""
        return self.demand.duty * (
            min(self.demand.cpus, self.instance.vcpus) * UNIT_PRICES["vcpu"]
            + min(self.demand.mem_gb, self.instance.mem_gb) * UNIT_PRICES["mem_gb"]
            + min(self.demand.gpus, self.instance.gpus) * UNIT_PRICES["gpu"]
        )

    @property
    def waste_fraction(self) -> float:
        """Fraction of the instance price paying for unused capacity:
        shape mismatch (instance > demand) plus idle slack (duty < 1)."""
        paid = self.hourly_cost
        return 1.0 - self.used_value_hour / paid if paid > 0 else 0.0


@dataclass
class IaasCloud:
    """Cheapest-fit instance selection over a catalog."""

    catalog: InstanceCatalog
    allocations: List[IaasAllocation] = field(default_factory=list)
    unplaceable: List[WorkloadDemand] = field(default_factory=list)

    def provision(self, demand: WorkloadDemand) -> Optional[IaasAllocation]:
        """Rent the cheapest covering instance; None if nothing fits."""
        instance = self.catalog.cheapest_fit(demand)
        if instance is None:
            self.unplaceable.append(demand)
            return None
        allocation = IaasAllocation(demand=demand, instance=instance)
        self.allocations.append(allocation)
        return allocation

    def provision_all(self, demands: List[WorkloadDemand]) -> "IaasCloud":
        for demand in demands:
            self.provision(demand)
        return self

    # -- aggregate accounting ---------------------------------------------------

    @property
    def total_hourly_cost(self) -> float:
        return sum(a.hourly_cost for a in self.allocations)

    @property
    def total_used_value(self) -> float:
        return sum(a.used_value_hour for a in self.allocations)

    @property
    def mean_waste_fraction(self) -> float:
        """Spend-weighted waste across all allocations (the C1 number)."""
        paid = self.total_hourly_cost
        if paid <= 0:
            return 0.0
        return 1.0 - self.total_used_value / paid

    def instance_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for allocation in self.allocations:
            name = allocation.instance.name
            histogram[name] = histogram.get(name, 0) + 1
        return histogram


def udc_exact_hourly_cost(
    demands: List[WorkloadDemand], tuned: bool = True
) -> float:
    """What the same demands cost under exact per-unit billing (UDC).

    With ``tuned`` (the default), UDC's telemetry-driven fine tuning
    (§3.2) has shrunk each allocation to observed usage, so the bill is
    ``duty x shape``; untuned UDC still bills the declared shape — exactly
    matched, but provisioned for peak.
    """
    return sum(
        (d.duty if tuned else 1.0) * (
            d.cpus * UNIT_PRICES["vcpu"]
            + d.mem_gb * UNIT_PRICES["mem_gb"]
            + d.gpus * UNIT_PRICES["gpu"]
        )
        for d in demands
    )
