"""Coarse-grained orchestrator baseline (paper §3.4).

*"Existing distributed management frameworks like Kubernetes often take
coarse-grained, application-oblivious approaches, e.g., treating a
container as the unit of replication, and thus will fall short for UDC."*

The model: an application's modules are packed into *pods* (container
bundles).  Replication, placement, and failure handling operate on whole
pods — so replicating one critical module drags every module sharing its
pod along, and a pod-level failure domain couples modules the user wanted
independent.  Benchmark E13/E14 compare resource cost of pod-level vs
module-level replication for Table-1-like specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule

__all__ = ["CoarseOrchestrator", "CoarsePod"]


@dataclass
class CoarsePod:
    """One deployable bundle of modules with a single replica count."""

    name: str
    modules: List[str] = field(default_factory=list)
    replicas: int = 1
    #: resource units the pod pins per replica (sum of member demands)
    cpu_units: float = 0.0
    mem_gb: float = 0.0
    gpu_units: float = 0.0

    @property
    def total_cpu(self) -> float:
        return self.cpu_units * self.replicas

    @property
    def total_mem(self) -> float:
        return self.mem_gb * self.replicas

    @property
    def total_gpu(self) -> float:
        return self.gpu_units * self.replicas


class CoarseOrchestrator:
    """Packs a module DAG into pods and applies pod-level replication."""

    def __init__(self, modules_per_pod: int = 3):
        if modules_per_pod < 1:
            raise ValueError("modules_per_pod must be >= 1")
        self.modules_per_pod = modules_per_pod

    def deploy(
        self,
        dag: ModuleDAG,
        replication_demand: Dict[str, int],
        module_cpu: Optional[Dict[str, float]] = None,
        module_gpu: Optional[Dict[str, float]] = None,
        module_mem: Optional[Dict[str, float]] = None,
    ) -> List[CoarsePod]:
        """Bundle modules into pods; each pod replicates at the *max* of
        its members' demanded replication (the orchestrator cannot split a
        pod, so the most-demanding member sets the level for all)."""
        module_cpu = module_cpu or {}
        module_gpu = module_gpu or {}
        module_mem = module_mem or {}
        names = sorted(dag.modules)
        pods: List[CoarsePod] = []
        for start in range(0, len(names), self.modules_per_pod):
            members = names[start:start + self.modules_per_pod]
            pod = CoarsePod(name=f"pod-{len(pods)}", modules=members)
            pod.replicas = max(
                (replication_demand.get(m, 1) for m in members), default=1
            )
            for member in members:
                module = dag.modules[member]
                if isinstance(module, TaskModule):
                    pod.cpu_units += module_cpu.get(member, 1.0)
                    pod.gpu_units += module_gpu.get(member, 0.0)
                    pod.mem_gb += module_mem.get(member, 1.0)
                elif isinstance(module, DataModule):
                    pod.mem_gb += module.size_gb
            pods.append(pod)
        return pods

    @staticmethod
    def total_units(pods: List[CoarsePod]) -> Dict[str, float]:
        return {
            "cpu": sum(p.total_cpu for p in pods),
            "mem_gb": sum(p.total_mem for p in pods),
            "gpu": sum(p.total_gpu for p in pods),
        }

    @staticmethod
    def fine_grained_units(
        dag: ModuleDAG,
        replication_demand: Dict[str, int],
        module_cpu: Optional[Dict[str, float]] = None,
        module_gpu: Optional[Dict[str, float]] = None,
        module_mem: Optional[Dict[str, float]] = None,
    ) -> Dict[str, float]:
        """UDC's module-level replication for the same demands: each
        module replicates at exactly its own factor."""
        module_cpu = module_cpu or {}
        module_gpu = module_gpu or {}
        module_mem = module_mem or {}
        totals = {"cpu": 0.0, "mem_gb": 0.0, "gpu": 0.0}
        for name, module in dag.modules.items():
            factor = replication_demand.get(name, 1)
            if isinstance(module, TaskModule):
                totals["cpu"] += module_cpu.get(name, 1.0) * factor
                totals["gpu"] += module_gpu.get(name, 0.0) * factor
                totals["mem_gb"] += module_mem.get(name, 1.0) * factor
            elif isinstance(module, DataModule):
                totals["mem_gb"] += module.size_gb * factor
        return totals
