"""Provider-dictated baselines UDC is compared against.

* :mod:`~repro.baselines.iaas` — today's VM/instance model: each workload
  rents the cheapest catalog instance that covers its demand (the §1
  p3.16xlarge story);
* :mod:`~repro.baselines.serverless` — FaaS: CPU-only functions with cold
  starts and per-invocation billing (no GPU offering, §1's gap);
* :mod:`~repro.baselines.coarse` — a Kubernetes-like orchestrator whose
  unit of replication/placement is a whole container bundle rather than a
  fine-grained module (§3.4's "coarse-grained, application-oblivious"
  critique).
"""

from repro.baselines.coarse import CoarseOrchestrator, CoarsePod
from repro.baselines.iaas import IaasAllocation, IaasCloud
from repro.baselines.serverless import FaasPlatform, FaasResult

__all__ = [
    "CoarseOrchestrator",
    "CoarsePod",
    "FaasPlatform",
    "FaasResult",
    "IaasAllocation",
    "IaasCloud",
]
