"""FaaS baseline and the UDC GPU-serverless comparator (paper §1, E3).

Model of a 2021 serverless platform:

* functions run on **CPU only** (the gap the paper calls out);
* per-request: a warm idle instance within the keep-alive window is
  reused, otherwise a cold start is paid on the critical path;
* autoscaling is unbounded (each request can get its own instance);
* billing is duration x allocated-capacity (GB-second style), plus a
  per-request fee.

The same machinery with ``gpu=True`` models what UDC enables: serverless
functions whose resource aspect names a GPU.  The third comparator —
today's workaround — is an always-on GPU VM rented for the full horizon
(:func:`always_on_gpu_vm_cost`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.workloads.inference import InferenceTrace

__all__ = ["FaasPlatform", "FaasResult", "always_on_gpu_vm_cost"]

#: per-request platform fee (AWS Lambda's $0.20 per million requests)
REQUEST_FEE = 0.20 / 1e6


@dataclass
class FaasResult:
    """Measured behaviour of one trace on one platform configuration."""

    latencies_s: List[float] = field(default_factory=list)
    cold_starts: int = 0
    invocations: int = 0
    compute_cost: float = 0.0
    request_fees: float = 0.0

    @property
    def total_cost(self) -> float:
        return self.compute_cost + self.request_fees

    @property
    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)

    def percentile_latency_s(self, p: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(int(p / 100.0 * len(ordered)), len(ordered) - 1)
        return ordered[index]

    @property
    def cold_start_fraction(self) -> float:
        return self.cold_starts / self.invocations if self.invocations else 0.0


@dataclass
class FaasPlatform:
    """An event-triggered function platform.

    Args:
        gpu: whether functions may attach a GPU (False = today's FaaS).
        cpu_units: cores allocated per invocation.
        cpu_rate: work units per second per core.
        gpu_rate: work units per second per GPU.
        cold_start_s: instance provisioning time on a cold path (GPU
            functions pay extra for device attach).
        keepalive_s: how long an idle instance stays warm.
        cpu_unit_price_hour / gpu_unit_price_hour: billing rates.
    """

    gpu: bool = False
    cpu_units: float = 2.0
    cpu_rate: float = 1.0
    gpu_rate: float = 40.0
    cold_start_s: float = 0.5
    gpu_attach_s: float = 1.5
    keepalive_s: float = 600.0
    cpu_unit_price_hour: float = 0.037
    gpu_unit_price_hour: float = 2.596

    def execution_seconds(self, work: float) -> float:
        if self.gpu:
            return work / self.gpu_rate
        return work / (self.cpu_rate * self.cpu_units)

    def invocation_cost(self, duration_s: float) -> float:
        hours = duration_s / 3600.0
        cost = self.cpu_units * self.cpu_unit_price_hour * hours
        if self.gpu:
            cost += self.gpu_unit_price_hour * hours
        return cost + REQUEST_FEE

    def run_trace(self, trace: InferenceTrace) -> FaasResult:
        """Replay the arrival trace; returns latency/cost measurements.

        Warm-instance reuse: each finished invocation leaves its instance
        idle until ``keepalive_s`` later; an arrival grabs the idle
        instance with the *latest* expiry (LIFO, matching real platforms'
        bias toward keeping few instances warm).
        """
        result = FaasResult()
        # (idle_since, expires_at) per warm instance
        warm: List[float] = []  # idle-since times; expiry = idle + keepalive
        for request in trace.requests:
            arrival = request.arrival_s
            warm = [t for t in warm if t + self.keepalive_s >= arrival]
            startup = 0.0
            if warm:
                warm.sort()
                warm.pop()  # most recently idle
            else:
                result.cold_starts += 1
                startup = self.cold_start_s + (self.gpu_attach_s if self.gpu else 0.0)
            execution = self.execution_seconds(request.work)
            latency = startup + execution
            finish = arrival + latency
            warm.append(finish)
            result.latencies_s.append(latency)
            result.invocations += 1
            billed = startup + execution  # cold start is billed time too
            result.compute_cost += self.invocation_cost(billed) - REQUEST_FEE
            result.request_fees += REQUEST_FEE
        return result


def always_on_gpu_vm_cost(
    horizon_s: float, instance_price_hour: float = 3.06
) -> float:
    """Today's workaround for event-triggered GPU inference: keep a GPU
    instance (p3.2xlarge) running for the whole horizon."""
    return instance_price_hour * horizon_s / 3600.0
