"""Closed- and open-loop load generation against a running gateway.

Two canonical load shapes from the measurement literature:

* **Closed loop** — each simulated tenant runs think-submit-wait: a new
  request only enters after the previous one finishes (or is shed and
  backed off).  Offered load self-regulates to service capacity, so the
  closed loop measures *capacity and fairness* — per-tenant completion
  counts feed Jain's index.
* **Open loop** — arrivals fire at a fixed rate regardless of
  completions, the shape that exposes overload: when offered rate
  exceeds capacity, queues (and latency) grow without bound unless the
  server sheds.  The open loop measures *latency under overload* and
  how well shedding holds goodput.

Thousands of logical tenants multiplex over one
:class:`~repro.gateway.client.GatewayClient` connection pool, so a
10k-tenant run uses a few dozen sockets, not 10k.

Run standalone::

    python -m repro.workloads.loadgen --port 8080 --mode closed \
        --tenants 1000 --total 3000
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.economics.tenants import jain_index
from repro.gateway.client import GatewayClient, GatewayError

__all__ = [
    "LoadReport",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
]


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(int(q / 100.0 * len(ordered)), len(ordered) - 1)
    return ordered[rank]


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    mode: str
    tenants: int
    completed: int = 0
    cached: int = 0
    shed: int = 0
    quota_rejected: int = 0
    errors: int = 0
    dropped: int = 0
    duration_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    per_tenant_completed: Dict[str, int] = field(default_factory=dict)

    @property
    def goodput_per_s(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def jain(self) -> float:
        """Fairness over per-tenant completions, zero-filled so a tenant
        the gateway starved entirely still drags the index down."""
        return jain_index(
            float(self.per_tenant_completed.get(f"lg-{i}", 0))
            for i in range(self.tenants)
        )

    def to_dict(self, include_latencies: bool = False) -> Dict:
        body = {
            "mode": self.mode,
            "tenants": self.tenants,
            "completed": self.completed,
            "cached": self.cached,
            "shed": self.shed,
            "quota_rejected": self.quota_rejected,
            "errors": self.errors,
            "dropped": self.dropped,
            "duration_s": round(self.duration_s, 4),
            "goodput_per_s": round(self.goodput_per_s, 2),
            "jain": round(self.jain, 4),
            "latency_s": {
                "count": len(self.latencies_s),
                "mean": (sum(self.latencies_s) / len(self.latencies_s)
                         if self.latencies_s else 0.0),
                "p50": percentile(self.latencies_s, 50),
                "p90": percentile(self.latencies_s, 90),
                "p99": percentile(self.latencies_s, 99),
            },
        }
        if include_latencies:
            body["latencies_s"] = list(self.latencies_s)
        return body


def _tenant_name(index: int) -> str:
    return f"lg-{index}"


async def run_closed_loop(
    host: str,
    port: int,
    *,
    tenants: int = 100,
    total: int = 300,
    duration_s: float = 60.0,
    archetype: str = "tiny",
    pool_size: int = 128,
    wait_timeout_s: float = 5.0,
    register: bool = True,
    unique_inputs: bool = True,
    tag_variety: int = 32,
) -> LoadReport:
    """Drive ``tenants`` concurrent think-submit-wait loops until
    ``total`` submissions complete or ``duration_s`` elapses.

    A 429 (shed or over-quota) backs the tenant off by the server's
    Retry-After hint, consuming no quota — the loop just retries later.
    ``unique_inputs`` perturbs each submission's inputs so the run
    measures executed work rather than result-cache hits; app tags
    cycle over ``tag_variety`` variants so the gateway's DAG cache
    works at any tenant count.
    """
    report = LoadReport(mode="closed", tenants=tenants)
    done_counts: Dict[str, int] = {}
    deadline = time.monotonic() + duration_s
    stop = asyncio.Event()

    async with GatewayClient(host, port, pool_size=pool_size) as client:
        if register:
            # Registration batches through the same pool.
            await asyncio.gather(*(
                client.register_tenant(_tenant_name(i))
                for i in range(tenants)
            ))

        async def tenant_loop(index: int) -> None:
            name = _tenant_name(index)
            app = {"archetype": archetype,
                   "tag": str(index % tag_variety)}
            iteration = 0
            while not stop.is_set() and time.monotonic() < deadline:
                iteration += 1
                inputs = ({"iter": iteration, "tenant": name}
                          if unique_inputs else None)
                start = time.monotonic()
                try:
                    outcome = await client.submit_and_wait(
                        name, app, inputs=inputs,
                        timeout_s=wait_timeout_s,
                    )
                    while not outcome.get("done"):
                        if stop.is_set() or time.monotonic() > deadline:
                            return
                        outcome = await client.result(
                            outcome["seq"], wait=True,
                            timeout_s=wait_timeout_s,
                        )
                except GatewayError as exc:
                    if exc.status == 429:
                        payload = exc.payload or {}
                        if payload.get("error") == "quota-exceeded":
                            report.quota_rejected += 1
                        else:
                            report.shed += 1
                        await asyncio.sleep(exc.retry_after_s or 0.2)
                        continue
                    if exc.status == 503:
                        return  # server draining: the run is over
                    report.errors += 1
                    continue
                except (ConnectionError, asyncio.IncompleteReadError,
                        OSError):
                    report.errors += 1
                    return
                report.latencies_s.append(time.monotonic() - start)
                if outcome.get("cached"):
                    report.cached += 1
                report.completed += 1
                done_counts[name] = done_counts.get(name, 0) + 1
                if report.completed >= total:
                    stop.set()

        started = time.monotonic()
        await asyncio.gather(*(tenant_loop(i) for i in range(tenants)))
        report.duration_s = time.monotonic() - started
    report.per_tenant_completed = done_counts
    return report


async def run_open_loop(
    host: str,
    port: int,
    *,
    rate_per_s: float = 500.0,
    duration_s: float = 10.0,
    tenants: int = 100,
    archetype: str = "tiny",
    pool_size: int = 128,
    wait_timeout_s: float = 10.0,
    max_outstanding: int = 20_000,
    register: bool = True,
    tag_variety: int = 32,
) -> LoadReport:
    """Fire submissions at ``rate_per_s`` regardless of completions.

    Each arrival round-robins across ``tenants`` names and, when
    accepted, waits for its result in the background; latency is
    submit-to-result.  Arrivals beyond ``max_outstanding`` unfinished
    requests are counted ``dropped`` instead of spawned, bounding
    memory when the server is far behind the offered rate.
    """
    report = LoadReport(mode="open", tenants=tenants)
    done_counts: Dict[str, int] = {}
    outstanding = 0
    tasks: List[asyncio.Task] = []

    async with GatewayClient(host, port, pool_size=pool_size) as client:
        if register:
            await asyncio.gather(*(
                client.register_tenant(_tenant_name(i))
                for i in range(tenants)
            ))

        async def one_arrival(index: int) -> None:
            nonlocal outstanding
            name = _tenant_name(index % tenants)
            app = {"archetype": archetype,
                   "tag": str(index % tag_variety)}
            start = time.monotonic()
            try:
                outcome = await client.submit_and_wait(
                    name, app, inputs={"iter": index, "tenant": name},
                    timeout_s=wait_timeout_s,
                )
                while not outcome.get("done"):
                    outcome = await client.result(
                        outcome["seq"], wait=True, timeout_s=wait_timeout_s,
                    )
            except GatewayError as exc:
                if exc.status == 429:
                    payload = exc.payload or {}
                    if payload.get("error") == "quota-exceeded":
                        report.quota_rejected += 1
                    else:
                        report.shed += 1
                else:
                    report.errors += 1
                return
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                report.errors += 1
                return
            finally:
                outstanding -= 1
            report.latencies_s.append(time.monotonic() - start)
            if outcome.get("cached"):
                report.cached += 1
            report.completed += 1
            done_counts[name] = done_counts.get(name, 0) + 1

        started = time.monotonic()
        interval = 1.0 / rate_per_s if rate_per_s > 0 else 0.0
        index = 0
        while (now := time.monotonic()) - started < duration_s:
            # Spawn every arrival due since the last wakeup in one burst;
            # yielding per arrival would let a busy event loop throttle
            # the generator into a de-facto closed loop.
            due = (int((now - started) * rate_per_s) + 1 - index
                   if interval else 1)
            for _ in range(max(due, 1)):
                if outstanding >= max_outstanding:
                    report.dropped += 1
                else:
                    outstanding += 1
                    tasks.append(asyncio.create_task(one_arrival(index)))
                index += 1
            next_fire = started + index * interval
            await asyncio.sleep(max(next_fire - time.monotonic(), 0))
        if tasks:
            await asyncio.gather(*tasks)
        report.duration_s = time.monotonic() - started
    report.per_tenant_completed = done_counts
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.loadgen",
        description="Generate closed- or open-loop load against a "
                    "running udc gateway and print a JSON report.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed")
    parser.add_argument("--tenants", type=int, default=100)
    parser.add_argument("--total", type=int, default=300,
                        help="closed loop: stop after this many "
                             "completions")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="wall-clock budget (closed) or run length "
                             "(open), seconds")
    parser.add_argument("--rate", type=float, default=500.0,
                        help="open loop: offered submissions per second")
    parser.add_argument("--archetype", default="tiny")
    parser.add_argument("--pool", type=int, default=128,
                        help="client connection-pool size")
    parser.add_argument("--no-register", action="store_true",
                        help="skip tenant registration (already done)")
    args = parser.parse_args(argv)

    if args.mode == "closed":
        report = asyncio.run(run_closed_loop(
            args.host, args.port, tenants=args.tenants, total=args.total,
            duration_s=args.duration, archetype=args.archetype,
            pool_size=args.pool, register=not args.no_register,
        ))
    else:
        report = asyncio.run(run_open_loop(
            args.host, args.port, rate_per_s=args.rate,
            duration_s=args.duration, tenants=args.tenants,
            archetype=args.archetype, pool_size=args.pool,
            register=not args.no_register,
        ))
    json.dump(report.to_dict(), sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0 if report.errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
