"""Diurnal (daily-cycle) inference traces.

Production event-triggered services follow a day/night load curve, which
is precisely what makes always-on capacity wasteful (the §1 economics):
capacity sized for the afternoon peak idles all night.  This generator
produces a non-homogeneous Poisson arrival process whose rate follows a
sinusoidal day shape, via thinning (Lewis & Shedler), deterministic per
seed.
"""

from __future__ import annotations

import math
import random
from repro.simulator.rng import derive_seed
from repro.workloads.inference import InferenceRequest, InferenceTrace

__all__ = ["diurnal_rate", "diurnal_inference_trace"]

DAY_S = 24 * 3600.0


def diurnal_rate(
    t_s: float,
    peak_rate_hz: float,
    trough_fraction: float = 0.1,
    peak_hour: float = 14.0,
) -> float:
    """Instantaneous arrival rate at time-of-day ``t_s`` (seconds).

    A raised cosine peaking at ``peak_hour`` (default mid-afternoon) and
    bottoming at ``trough_fraction`` of the peak overnight.
    """
    if peak_rate_hz <= 0:
        raise ValueError("peak_rate_hz must be positive")
    if not 0.0 <= trough_fraction <= 1.0:
        raise ValueError("trough_fraction must be in [0, 1]")
    phase = 2 * math.pi * ((t_s / DAY_S) - peak_hour / 24.0)
    shape = (1 + math.cos(phase)) / 2  # 1 at peak hour, 0 opposite
    return peak_rate_hz * (trough_fraction + (1 - trough_fraction) * shape)


def diurnal_inference_trace(
    peak_rate_hz: float,
    horizon_s: float = DAY_S,
    work: float = 40.0,
    input_bytes: int = 1 << 20,
    trough_fraction: float = 0.1,
    peak_hour: float = 14.0,
    seed: int = 0,
) -> InferenceTrace:
    """Non-homogeneous Poisson arrivals following the daily curve.

    Implementation: thinning against the constant majorant
    ``peak_rate_hz`` — candidate arrivals at the peak rate are accepted
    with probability ``rate(t)/peak``.
    """
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    rng = random.Random(derive_seed(seed, "diurnal-trace"))
    trace = InferenceTrace(rate_hz=peak_rate_hz, horizon_s=horizon_s)
    t = 0.0
    request_id = 0
    while True:
        t += rng.expovariate(peak_rate_hz)
        if t >= horizon_s:
            break
        accept_p = diurnal_rate(t, peak_rate_hz, trough_fraction,
                                peak_hour) / peak_rate_hz
        if rng.random() < accept_p:
            trace.requests.append(
                InferenceRequest(
                    arrival_s=t,
                    work=work * rng.uniform(0.8, 1.2),
                    input_bytes=input_bytes,
                    request_id=request_id,
                )
            )
            request_id += 1
    return trace
