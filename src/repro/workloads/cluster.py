"""Cluster-churn workload: a stream of tenant application arrivals.

Models a provider's day: tenants of different archetypes (web services,
batch analytics, secure pipelines, GPU inference) arrive as a Poisson
process, each bringing its own DAG and aspect definition.  Used by E17 to
exercise the control plane under sustained multi-tenant churn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.appmodel.annotations import AppBuilder
from repro.appmodel.dag import ModuleDAG
from repro.hardware.devices import DeviceType
from repro.simulator.rng import derive_seed

__all__ = ["ArrivingApp", "ClusterTrace", "generate_cluster_trace"]


@dataclass(frozen=True)
class ArrivingApp:
    """One tenant application arriving at a point in simulated time."""

    arrival_s: float
    tenant: str
    archetype: str
    dag: ModuleDAG
    definition: Dict


@dataclass
class ClusterTrace:
    """An ordered arrival schedule."""

    arrivals: List[ArrivingApp] = field(default_factory=list)
    horizon_s: float = 0.0

    def __len__(self) -> int:
        return len(self.arrivals)

    def archetype_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for arrival in self.arrivals:
            counts[arrival.archetype] = counts.get(arrival.archetype, 0) + 1
        return counts


def _noop(ctx):
    """Shared task body for all archetypes: the simulator models the
    work, not the code.  Module-level (not a closure) so archetype DAGs
    pickle by reference — snapshots of a service holding them depend on
    it."""
    return None


def _web_service(tag: str) -> Tuple[ModuleDAG, Dict]:
    app = AppBuilder(f"web-{tag}")
    app.task(name="api", work=4.0, max_parallelism=2)(_noop)
    app.task(name="render", work=2.0)(_noop)
    session = app.data("sessions", size_gb=2, hot=True)
    app.flows("api", "render", bytes_=1 << 16)
    app.writes("api", session, bytes_per_run=1 << 16)
    definition = {
        "api": {"resource": {"device": "cpu", "amount": 2, "mem_gb": 4}},
        "render": {"resource": "cheapest"},
        "sessions": {"resource": "dram",
                     "distributed": {"replication": 2,
                                     "preference": "reader"}},
    }
    return app.build(), definition


def _batch_analytics(tag: str) -> Tuple[ModuleDAG, Dict]:
    app = AppBuilder(f"batch-{tag}")
    app.task(name="extract", work=10.0)(_noop)
    app.task(name="aggregate", work=25.0)(_noop)
    warehouse = app.data("warehouse", size_gb=30)
    app.reads("extract", warehouse, bytes_per_run=64 << 20)
    app.flows("extract", "aggregate", bytes_=16 << 20)
    definition = {
        "extract": {"resource": {"device": "cpu", "amount": 4}},
        "aggregate": {"resource": {"device": "cpu", "amount": 8},
                      "distributed": {"checkpoint": True}},
        "warehouse": {"resource": "ssd"},
    }
    return app.build(), definition


def _secure_pipeline(tag: str) -> Tuple[ModuleDAG, Dict]:
    app = AppBuilder(f"secure-{tag}")
    app.task(name="ingest", work=3.0)(_noop)
    app.task(name="process", work=8.0)(_noop)
    vault = app.data("vault", size_gb=5)
    app.flows("ingest", "process", bytes_=1 << 20)
    app.writes("process", vault, bytes_per_run=1 << 20)
    definition = {
        "ingest": {"execenv": {"env": "sgx-enclave"}},
        "process": {"execenv": {"env": "sgx-enclave",
                                "single_tenant": True}},
        "vault": {"resource": "ssd",
                  "execenv": {"protection": ["encrypt", "integrity"]},
                  "distributed": {"replication": 2,
                                  "consistency": "sequential"}},
    }
    return app.build(), definition


def _gpu_inference(tag: str) -> Tuple[ModuleDAG, Dict]:
    app = AppBuilder(f"inference-{tag}")
    app.task(name="preproc", work=1.0,
             devices={DeviceType.CPU, DeviceType.GPU})(_noop)
    app.task(name="model", work=40.0, devices={DeviceType.GPU})(_noop)
    app.flows("preproc", "model", bytes_=4 << 20)
    definition = {
        "preproc": {"resource": "cheapest"},
        "model": {"resource": {"device": "gpu", "amount": 1}},
    }
    return app.build(), definition


ARCHETYPE_BUILDERS = {
    "web": (_web_service, 0.4),
    "batch": (_batch_analytics, 0.3),
    "secure": (_secure_pipeline, 0.2),
    "inference": (_gpu_inference, 0.1),
}


def generate_cluster_trace(
    rate_per_minute: float,
    horizon_s: float,
    seed: int = 0,
) -> ClusterTrace:
    """Poisson arrivals of mixed-archetype tenant applications."""
    if rate_per_minute <= 0 or horizon_s <= 0:
        raise ValueError("rate and horizon must be positive")
    rng = random.Random(derive_seed(seed, "cluster-trace"))
    names = list(ARCHETYPE_BUILDERS)
    weights = [ARCHETYPE_BUILDERS[n][1] for n in names]
    trace = ClusterTrace(horizon_s=horizon_s)
    t = 0.0
    index = 0
    while True:
        t += rng.expovariate(rate_per_minute / 60.0)
        if t >= horizon_s:
            break
        archetype = rng.choices(names, weights=weights, k=1)[0]
        builder = ARCHETYPE_BUILDERS[archetype][0]
        dag, definition = builder(str(index))
        trace.arrivals.append(
            ArrivingApp(
                arrival_s=t,
                tenant=f"{archetype}-tenant-{index}",
                archetype=archetype,
                dag=dag,
                definition=definition,
            )
        )
        index += 1
    return trace
