"""The paper's motivating example: medical information processing.

Figure 2's application, module for module:

* **Storage** — S1 patient medical records, S2 consent forms, S3 the
  medical image arriving in real time, S4 anonymized records/images.
* **Diagnosis path** — A1 pre-processing (resize/greyscale), A2 object
  detection (CNN inference), A3 record retrieval + NLP (BERT) over S1,
  A4 automated diagnosis combining A2 and A3; the diagnosis is written
  back to S1.
* **Analytics path** — B1 consent filtering + anonymization (reads S1 and
  S2, writes S4), B2 third-party analytics over S4.

Locality relationships from §3.1's own examples: A1 and A2 are co-located
on one hardware unit; A3 has an affinity for S1.

:func:`table1_definition` is a cell-for-cell transcription of Table 1 into
the declarative spec language.  :func:`build_medical_app` returns the DAG
with small real computations attached so end-to-end runs produce an
actual (toy) diagnosis.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

from repro.appmodel.annotations import AppBuilder
from repro.appmodel.dag import ModuleDAG
from repro.hardware.devices import DeviceType

__all__ = ["build_medical_app", "table1_definition"]

MB = 1 << 20


def table1_definition() -> Dict:
    """Table 1 of the paper, one entry per cell.

    Resource column uses the shorthand strings exactly as printed
    ("Fastest", "GPU", "Cheapest", "SSD", "DRAM"); the exec-env and
    distributed columns expand to the structured form.
    """
    return {
        # A1: Fastest | Single-tenant (or SGX enclave if CPU) | No replication
        "A1": {
            "resource": "fastest",
            "execenv": {"isolation": "strong"},
            "distributed": {"replication": 1},
        },
        # A2: GPU | Single-tenant | No rep, Checkpoint
        "A2": {
            "resource": {"device": "gpu", "amount": 1},
            "execenv": {"isolation": "strong", "single_tenant": True},
            "distributed": {"replication": 1, "checkpoint": True},
        },
        # A3: GPU | Single-tenant | No rep, Checkpoint
        "A3": {
            "resource": {"device": "gpu", "amount": 1},
            "execenv": {"isolation": "strong", "single_tenant": True},
            "distributed": {"replication": 1, "checkpoint": True},
        },
        # A4: CPU | Single-tenant & SGX enclave | Rep 2x, Checkpoint
        "A4": {
            "resource": {"device": "cpu", "amount": 2},
            "execenv": {"env": "sgx-enclave", "single_tenant": True},
            "distributed": {"replication": 2, "checkpoint": True},
        },
        # B1: Cheapest | Single-tenant (or SGX enclave if CPU) | No replication
        "B1": {
            "resource": "cheapest",
            "execenv": {"isolation": "strong"},
            "distributed": {"replication": 1},
        },
        # B2: Cheapest | Containers | No rep, Checkpoint
        "B2": {
            "resource": "cheapest",
            "execenv": {"isolation": "weak"},
            "distributed": {"replication": 1, "checkpoint": True},
        },
        # S1: SSD | Encryption & integrity | Replicate 3x, Sequential
        "S1": {
            "resource": "ssd",
            "execenv": {"protection": ["encrypt", "integrity"]},
            "distributed": {"replication": 3, "consistency": "sequential"},
        },
        # S2: Cheapest | Encryption & integrity | Replicate 2x, Reader pref
        "S2": {
            "resource": "cheapest",
            "execenv": {"protection": ["encrypt", "integrity"]},
            "distributed": {"replication": 2, "preference": "reader"},
        },
        # S3: DRAM | Encryption & integrity | Replicate 2x
        "S3": {
            "resource": "dram",
            "execenv": {"protection": ["encrypt", "integrity"]},
            "distributed": {"replication": 2},
        },
        # S4: Cheapest | Integrity protection | No replication, Release
        "S4": {
            "resource": "cheapest",
            "execenv": {"protection": ["integrity"]},
            "distributed": {"replication": 1, "consistency": "release"},
        },
    }


def _preprocess(ctx: Dict) -> Dict:
    """A1: resize + greyscale the incoming image (toy: halve the pixels)."""
    image = ctx.get("input") or {"pixels": list(range(64)), "patient": "p-0"}
    return {
        "pixels": image["pixels"][::2],
        "patient": image["patient"],
    }


def _cnn_inference(ctx: Dict) -> Dict:
    """A2: object detection (toy: deterministic hash-derived findings)."""
    image = ctx["A1"]
    digest = hashlib.sha256(bytes(p % 256 for p in image["pixels"])).hexdigest()
    findings = ["nodule" if int(digest[0], 16) % 2 else "clear",
                f"confidence-0.{int(digest[1:3], 16) % 90 + 10}"]
    return {"patient": image["patient"], "objects": findings}


def _nlp_inference(ctx: Dict) -> Dict:
    """A3: retrieve the record and summarize prior diagnoses (toy)."""
    patient = (ctx.get("input") or {}).get("patient", "p-0")
    history = f"record({patient}): prior={hashlib.sha256(patient.encode()).hexdigest()[:6]}"
    return {"patient": patient, "history_summary": history}


def _diagnose(ctx: Dict) -> Dict:
    """A4: fuse detection and NLP into the automated diagnosis."""
    detection, nlp = ctx["A2"], ctx["A3"]
    return {
        "patient": detection["patient"],
        "diagnosis": f"{detection['objects'][0]} given {nlp['history_summary']}",
    }


def _anonymize(ctx: Dict) -> Dict:
    """B1: consent-filter and anonymize records for research."""
    consented = (ctx.get("input") or {}).get("consented", True)
    if not consented:
        return {"records": []}
    return {"records": [{"id": hashlib.sha256(b"p-0").hexdigest()[:8],
                         "payload": "anonymized"}]}


def _analytics(ctx: Dict) -> Dict:
    """B2: third-party analytics over the anonymized set (toy count)."""
    upstream = ctx.get("B1") or {"records": []}
    return {"cohort_size": len(upstream["records"])}


def build_medical_app(image_mb: float = 8.0) -> Tuple[ModuleDAG, Dict]:
    """Construct the Figure-2 application and its Table-1 definition.

    ``image_mb`` sizes the medical image flowing down the diagnosis path
    (a CT slice is a few MB).
    """
    app = AppBuilder("medical-information-processing")

    a1 = app.task(name="A1", work=0.5,
                  devices={DeviceType.CPU, DeviceType.GPU},
                  output_bytes=int(image_mb * MB / 2),
                  state_bytes=2 * MB, max_parallelism=2)(_preprocess)
    a2 = app.task(name="A2", work=40.0, devices={DeviceType.GPU},
                  output_bytes=64 * 1024, state_bytes=32 * MB)(_cnn_inference)
    a3 = app.task(name="A3", work=30.0, devices={DeviceType.GPU},
                  output_bytes=64 * 1024, state_bytes=24 * MB)(_nlp_inference)
    a4 = app.task(name="A4", work=2.0, devices={DeviceType.CPU},
                  output_bytes=16 * 1024, state_bytes=1 * MB,
                  max_parallelism=2)(_diagnose)
    b1 = app.task(name="B1", work=4.0, devices={DeviceType.CPU},
                  output_bytes=128 * MB, state_bytes=4 * MB,
                  sanitizer=True)(_anonymize)
    b2 = app.task(name="B2", work=20.0,
                  devices={DeviceType.CPU, DeviceType.GPU},
                  output_bytes=1 * MB, state_bytes=8 * MB)(_analytics)

    # Sensitivity labels for the information-flow analysis: patient
    # records, consent forms, and the live image are PHI; S4 is, by
    # construction, the anonymized research store.  B1 (consent filter +
    # anonymize) is the one legal declassification point.
    s1 = app.data("S1", size_gb=50.0, record_bytes=64 * 1024,
                  sensitivity="phi")
    s2 = app.data("S2", size_gb=2.0, record_bytes=4 * 1024,
                  sensitivity="phi")
    s3 = app.data("S3", size_gb=1.0, record_bytes=int(image_mb * MB),
                  hot=True, sensitivity="phi")
    s4 = app.data("S4", size_gb=20.0, record_bytes=64 * 1024,
                  sensitivity="anonymized")

    # Diagnosis path.
    app.reads(a1, s3, bytes_per_run=int(image_mb * MB))
    app.flows(a1, a2, bytes_=int(image_mb * MB / 2))
    app.reads(a3, s1, bytes_per_run=4 * MB)
    app.flows(a2, a4, bytes_=64 * 1024)
    app.flows(a3, a4, bytes_=64 * 1024)
    app.writes(a4, s1, bytes_per_run=64 * 1024)

    # Analytics path.
    app.reads(b1, s2, bytes_per_run=1 * MB)
    app.reads(b1, s1, bytes_per_run=64 * MB)
    app.writes(b1, s4, bytes_per_run=128 * MB)
    app.reads(b2, s4, bytes_per_run=128 * MB)

    # Locality relationships from the paper's own §3.1 examples.
    app.colocate(a1, a2)

    dag = app.build()
    return dag, table1_definition()
