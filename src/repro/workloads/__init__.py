"""Workloads: the paper's Figure-2 medical pipeline plus synthetic
generators used by the benchmarks.

* :mod:`~repro.workloads.medical` — the hospital application of Figure 2
  with the exact per-module aspects of Table 1;
* :mod:`~repro.workloads.inference` — event-triggered ML inference
  arrivals (the serverless-GPU motivating case, §1);
* :mod:`~repro.workloads.generators` — parameterized multi-dimensional
  demand mixes for the waste/disaggregation benchmarks (E1/E2).
"""

from repro.workloads.cluster import ArrivingApp, ClusterTrace, generate_cluster_trace
from repro.workloads.diurnal import diurnal_inference_trace, diurnal_rate
from repro.workloads.generators import (
    WorkloadMix,
    heterogeneous_mix,
    skewed_demands,
)
from repro.workloads.inference import InferenceTrace, poisson_inference_trace
from repro.workloads.medical import build_medical_app, table1_definition
from repro.workloads.tenants import (
    TenantProfile,
    TenantSubmission,
    TenantTrace,
    default_tenant_profiles,
    generate_tenant_trace,
)

__all__ = [
    "ArrivingApp",
    "ClusterTrace",
    "InferenceTrace",
    "TenantProfile",
    "TenantSubmission",
    "TenantTrace",
    "default_tenant_profiles",
    "diurnal_inference_trace",
    "diurnal_rate",
    "generate_cluster_trace",
    "generate_tenant_trace",
    "WorkloadMix",
    "build_medical_app",
    "heterogeneous_mix",
    "poisson_inference_trace",
    "skewed_demands",
    "table1_definition",
]
