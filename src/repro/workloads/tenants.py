"""Multi-tenant traffic for the serving layer, with diurnal skew.

Where :mod:`~repro.workloads.cluster` models one-off tenant arrivals,
this generator models *returning* tenants: a fixed population, each
repeatedly submitting its own application with fresh inputs, at a rate
that follows the daily load curve (:func:`~repro.workloads.diurnal
.diurnal_rate`).  Tenants peak at different hours — mid-afternoon web
traffic, overnight batch windows — so instantaneous load is skewed
toward whichever tenants are near their peak, which is exactly the
contention pattern fair-share admission exists to arbitrate.

A fraction of each tenant's submissions re-uses an earlier input payload
(the same report re-requested, the same nightly aggregate), giving the
service's result cache something real to hit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.appmodel.dag import ModuleDAG
from repro.simulator.rng import derive_seed
from repro.workloads.cluster import ARCHETYPE_BUILDERS
from repro.workloads.diurnal import DAY_S, diurnal_rate

__all__ = [
    "TenantProfile",
    "TenantSubmission",
    "TenantTrace",
    "default_tenant_profiles",
    "generate_tenant_trace",
]


@dataclass(frozen=True)
class TenantProfile:
    """One returning tenant's shape: what it runs, how much, and when."""

    name: str
    archetype: str = "web"
    #: fair-share weight the service should register this tenant with
    weight: float = 1.0
    #: hour of day (0-24) where this tenant's submission rate peaks
    peak_hour: float = 14.0
    #: multiplier on the trace-wide peak submission rate
    rate_scale: float = 1.0
    #: overnight rate as a fraction of this tenant's peak
    trough_fraction: float = 0.1

    def __post_init__(self):
        if self.archetype not in ARCHETYPE_BUILDERS:
            raise ValueError(
                f"unknown archetype {self.archetype!r} "
                f"(expected one of {sorted(ARCHETYPE_BUILDERS)})"
            )
        if self.weight <= 0 or self.rate_scale <= 0:
            raise ValueError("weight and rate_scale must be positive")


@dataclass(frozen=True)
class TenantSubmission:
    """One (tenant, app, definition, inputs) arrival at a sim time."""

    arrival_s: float
    tenant: str
    archetype: str
    dag: ModuleDAG
    definition: Dict
    inputs: Dict
    #: True when ``inputs`` repeats an earlier submission's payload
    repeat: bool = False


@dataclass
class TenantTrace:
    """A merged, time-ordered multi-tenant submission schedule."""

    profiles: List[TenantProfile] = field(default_factory=list)
    submissions: List[TenantSubmission] = field(default_factory=list)
    horizon_s: float = 0.0

    def __len__(self) -> int:
        return len(self.submissions)

    def per_tenant_counts(self) -> Dict[str, int]:
        counts = {profile.name: 0 for profile in self.profiles}
        for submission in self.submissions:
            counts[submission.tenant] = counts.get(submission.tenant, 0) + 1
        return counts


def default_tenant_profiles(
    count: int = 8,
    seed: int = 0,
) -> List[TenantProfile]:
    """A deterministic mixed population: archetypes cycle, weights span
    1x-3x, and peak hours stagger around the clock so the tenants take
    turns being the heavy hitter."""
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = random.Random(derive_seed(seed, "tenant-profiles"))
    archetypes = sorted(ARCHETYPE_BUILDERS)
    profiles = []
    for i in range(count):
        archetype = archetypes[i % len(archetypes)]
        profiles.append(
            TenantProfile(
                name=f"tenant-{i:02d}",
                archetype=archetype,
                weight=float(1 + i % 3),
                peak_hour=(24.0 * i / count + rng.uniform(-1.0, 1.0)) % 24.0,
                rate_scale=rng.uniform(0.7, 1.3),
            )
        )
    return profiles


def generate_tenant_trace(
    profiles: Optional[Sequence[TenantProfile]] = None,
    peak_rate_per_minute: float = 6.0,
    horizon_s: float = DAY_S / 4,
    repeat_fraction: float = 0.25,
    seed: int = 0,
) -> TenantTrace:
    """Thinned-Poisson submissions per tenant, merged by arrival time.

    Each tenant's instantaneous rate is ``peak_rate_per_minute *
    rate_scale`` shaped by its own diurnal curve (phase-shifted to its
    ``peak_hour``).  One application DAG is built per tenant and re-used
    across its submissions — the same app resubmitted with fresh inputs —
    so result-cache keys only collide when ``repeat_fraction`` says an
    input payload repeats.
    """
    if profiles is None:
        profiles = default_tenant_profiles(seed=seed)
    if peak_rate_per_minute <= 0 or horizon_s <= 0:
        raise ValueError("rate and horizon must be positive")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError("repeat_fraction must be in [0, 1]")

    trace = TenantTrace(profiles=list(profiles), horizon_s=horizon_s)
    apps: Dict[str, Tuple[ModuleDAG, Dict]] = {}
    for profile in trace.profiles:
        builder = ARCHETYPE_BUILDERS[profile.archetype][0]
        apps[profile.name] = builder(profile.name)

    for profile in trace.profiles:
        rng = random.Random(derive_seed(seed, f"tenant-trace:{profile.name}"))
        dag, definition = apps[profile.name]
        peak_hz = peak_rate_per_minute * profile.rate_scale / 60.0
        payloads: List[Dict] = []
        t = 0.0
        index = 0
        while True:
            t += rng.expovariate(peak_hz)
            if t >= horizon_s:
                break
            accept_p = diurnal_rate(
                t, peak_hz, profile.trough_fraction, profile.peak_hour
            ) / peak_hz
            if rng.random() >= accept_p:
                continue
            repeat = bool(payloads) and rng.random() < repeat_fraction
            if repeat:
                inputs = payloads[rng.randrange(len(payloads))]
            else:
                inputs = {
                    "request": f"{profile.name}-{index}",
                    "payload_bytes": 1 << rng.randint(10, 20),
                }
                payloads.append(inputs)
            trace.submissions.append(
                TenantSubmission(
                    arrival_s=t,
                    tenant=profile.name,
                    archetype=profile.archetype,
                    dag=dag,
                    definition=definition,
                    inputs=inputs,
                    repeat=repeat,
                )
            )
            index += 1

    trace.submissions.sort(key=lambda s: (s.arrival_s, s.tenant))
    return trace
