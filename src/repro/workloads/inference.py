"""Event-triggered ML inference traces (benchmark E3).

§1's motivating gap: *"many ML inference tasks are event-triggered and
could benefit from serverless computing and GPU acceleration.  Despite the
high demand for such applications, no cloud provider has yet supported GPU
in their serverless computing offerings."*

:func:`poisson_inference_trace` generates the arrival process: sporadic
inference requests (Poisson, optionally bursty) each carrying a model work
amount sized so that GPU execution is ~an order of magnitude faster than
CPU — the published CNN-inference shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.simulator.rng import derive_seed

__all__ = ["InferenceRequest", "InferenceTrace", "poisson_inference_trace"]


@dataclass(frozen=True)
class InferenceRequest:
    """One event-triggered inference invocation."""

    arrival_s: float
    #: abstract model work (same units as TaskModule.work)
    work: float
    input_bytes: int
    request_id: int


@dataclass
class InferenceTrace:
    """An arrival trace plus its generation parameters."""

    requests: List[InferenceRequest] = field(default_factory=list)
    rate_hz: float = 0.0
    horizon_s: float = 0.0

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def mean_interarrival_s(self) -> float:
        if len(self.requests) < 2:
            return 0.0
        gaps = [
            b.arrival_s - a.arrival_s
            for a, b in zip(self.requests, self.requests[1:])
        ]
        return sum(gaps) / len(gaps)


def poisson_inference_trace(
    rate_hz: float,
    horizon_s: float,
    work: float = 40.0,
    input_bytes: int = 1 << 20,
    burstiness: float = 0.0,
    seed: int = 0,
) -> InferenceTrace:
    """Poisson arrivals at ``rate_hz`` over ``horizon_s``.

    ``burstiness`` in [0, 1) mixes in a second, 10x-faster arrival mode
    (doubly stochastic), modeling the event-triggered spikes that make
    always-on GPU VMs wasteful and serverless attractive.
    """
    if rate_hz <= 0 or horizon_s <= 0:
        raise ValueError("rate and horizon must be positive")
    if not 0.0 <= burstiness < 1.0:
        raise ValueError("burstiness must be in [0, 1)")
    rng = random.Random(derive_seed(seed, "inference-trace"))
    trace = InferenceTrace(rate_hz=rate_hz, horizon_s=horizon_s)
    t = 0.0
    request_id = 0
    while True:
        rate = rate_hz * (10.0 if rng.random() < burstiness else 1.0)
        t += rng.expovariate(rate)
        if t >= horizon_s:
            break
        trace.requests.append(
            InferenceRequest(
                arrival_s=t,
                work=work * rng.uniform(0.8, 1.2),
                input_bytes=input_bytes,
                request_id=request_id,
            )
        )
        request_id += 1
    return trace
