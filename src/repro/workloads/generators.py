"""Synthetic multi-dimensional workload mixes (benchmarks E1, E2).

The paper's waste claim (C1, ~35%) and the disaggregation claim (C6, ~2x
utilization) are both statements about workload mixes whose per-dimension
demands do not match server/instance shapes.  These generators produce
such mixes deterministically from a seed:

* :func:`heterogeneous_mix` — a realistic blend of web, batch, ML, cache,
  and analytics job shapes (drawn with jitter around archetypes);
* :func:`skewed_demands` — a parameterized mix whose CPU:memory skew can
  be swept, used to locate the crossover where disaggregation's advantage
  appears.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.hardware.server import WorkloadDemand
from repro.simulator.rng import derive_seed

__all__ = ["WorkloadMix", "heterogeneous_mix", "skewed_demands", "ARCHETYPES"]

#: (name, cpus, mem_gb, gpus, weight) — archetype job shapes with their
#: relative frequency in the mix.  Shapes deliberately straddle the 1:2 /
#: 1:4 / 1:8 vCPU:GB ratios of the c5/m5/r5 families so that no catalog
#: instance matches exactly (the condition under which C1's waste arises).
ARCHETYPES: List[Tuple[str, float, float, float, float]] = [
    ("web", 2.0, 3.0, 0.0, 0.30),
    ("api", 1.0, 6.0, 0.0, 0.20),
    ("batch", 12.0, 20.0, 0.0, 0.15),
    ("cache", 2.0, 48.0, 0.0, 0.12),
    ("analytics", 20.0, 96.0, 0.0, 0.10),
    ("ml-train", 6.0, 40.0, 4.0, 0.05),
    ("ml-infer", 2.0, 12.0, 1.0, 0.05),
    ("gpu-orchestrator", 4.0, 16.0, 8.0, 0.03),
]


@dataclass
class WorkloadMix:
    """A generated set of demands plus aggregate accounting."""

    demands: List[WorkloadDemand] = field(default_factory=list)

    def totals(self) -> Dict[str, float]:
        return {
            "cpus": sum(d.cpus for d in self.demands),
            "mem_gb": sum(d.mem_gb for d in self.demands),
            "gpus": sum(d.gpus for d in self.demands),
        }

    def __len__(self) -> int:
        return len(self.demands)


def heterogeneous_mix(
    n_jobs: int,
    seed: int = 0,
    jitter: float = 0.25,
    duty_range: Tuple[float, float] = (0.55, 0.95),
) -> WorkloadMix:
    """Draw ``n_jobs`` demands from the archetype distribution.

    Each draw multiplies the archetype's dimensions by independent
    ``U[1-jitter, 1+jitter]`` noise (GPUs stay integral) and assigns a
    duty factor from ``duty_range`` — jobs provision for peak, so mean
    usage sits well below the provisioned shape (the Flexera-style idle
    component of the 35% waste claim).
    """
    if n_jobs < 0:
        raise ValueError("n_jobs must be >= 0")
    lo, hi = duty_range
    if not 0.0 < lo <= hi <= 1.0:
        raise ValueError(f"invalid duty_range {duty_range}")
    rng = random.Random(derive_seed(seed, "heterogeneous-mix"))
    names = [a[0] for a in ARCHETYPES]
    weights = [a[4] for a in ARCHETYPES]
    mix = WorkloadMix()
    for index in range(n_jobs):
        name = rng.choices(names, weights=weights, k=1)[0]
        _n, cpus, mem, gpus, _w = next(a for a in ARCHETYPES if a[0] == name)
        scale = lambda v: v * rng.uniform(1 - jitter, 1 + jitter)  # noqa: E731
        mix.demands.append(
            WorkloadDemand(
                cpus=round(max(scale(cpus), 0.25), 2),
                mem_gb=round(max(scale(mem), 0.5), 2),
                gpus=float(gpus),  # GPUs come in whole units
                duty=round(rng.uniform(lo, hi), 3),
                name=f"{name}-{index}",
            )
        )
    return mix


def skewed_demands(
    n_jobs: int,
    cpu_heavy_fraction: float,
    seed: int = 0,
) -> WorkloadMix:
    """A two-population mix for the disaggregation sweep (E2).

    ``cpu_heavy_fraction`` of jobs are CPU-heavy (8 cores, 4 GB); the rest
    are memory-heavy (1 core, 56 GB).  On monolithic servers the two
    populations strand each other's spare dimension; pools serve both
    exactly.
    """
    if not 0.0 <= cpu_heavy_fraction <= 1.0:
        raise ValueError("cpu_heavy_fraction must be in [0, 1]")
    rng = random.Random(derive_seed(seed, "skewed-mix"))
    mix = WorkloadMix()
    for index in range(n_jobs):
        if rng.random() < cpu_heavy_fraction:
            mix.demands.append(
                WorkloadDemand(cpus=8.0, mem_gb=4.0, name=f"cpu-heavy-{index}")
            )
        else:
            mix.demands.append(
                WorkloadDemand(cpus=1.0, mem_gb=56.0, name=f"mem-heavy-{index}")
            )
    return mix
