"""A replicated object store over disaggregated devices.

Data modules (the S1–S4 boxes of Figure 2) become
:class:`ReplicatedStore` instances: N replicas on storage/memory devices,
speaking real message protocols over the fabric.  Each consistency level
from the user's distributed aspect maps to a different protocol:

* **sequential** — all writes ordered through the primary replica (or an
  in-network sequencer when one is attached); writes ack only after every
  replica applied, reads see the latest write.
* **release** — writes apply at the primary and buffer; propagation to
  backups happens at an explicit ``release()``; reads at backups between
  releases may be stale (by design — that is the contract).
* **eventual** — writes ack at the nearest replica and propagate
  asynchronously.

Operation preference (§3.4's "read preference over write") routes reads to
the nearest replica instead of the primary, trading staleness for latency.

Every operation returns an :class:`OpStats` so benchmarks E13/E11 can
report latency, message count, bytes moved, and observed staleness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.replication import PlacementResult
from repro.hardware.devices import Device
from repro.hardware.fabric import Fabric, Location
from repro.simulator.engine import Simulator

__all__ = ["OpStats", "Replica", "ReplicatedStore"]

ACK_BYTES = 64
REQUEST_BYTES = 64


@dataclass
class OpStats:
    """Measured cost and semantics of one store operation."""

    op: str
    key: str
    latency_s: float = 0.0
    messages: int = 0
    bytes_moved: int = 0
    #: for reads: how many versions behind the primary the result was
    staleness: int = 0
    served_by: Optional[str] = None


@dataclass
class Replica:
    """One replica's state on one device."""

    device: Device
    location: Location
    data: Dict[str, Tuple[int, Any]] = field(default_factory=dict)
    #: highest version applied per key (for staleness accounting)
    applied_version: Dict[str, int] = field(default_factory=dict)
    #: out-of-order buffer for sequencer-ordered delivery
    reorder_buffer: Dict[int, Tuple[str, int, Any]] = field(default_factory=dict)
    next_sequence: int = 0

    def apply(self, key: str, version: int, value: Any) -> None:
        current = self.applied_version.get(key, 0)
        if version > current:
            self.data[key] = (version, value)
            self.applied_version[key] = version

    def media_time(self, size_bytes: int) -> float:
        """Device access latency + serialization at media bandwidth."""
        spec = self.device.spec
        bw = spec.bandwidth_gbps * 1e9 / 8  # bytes/s
        transfer = size_bytes / bw if bw > 0 else 0.0
        return spec.access_latency_s + transfer


class ReplicatedStore:
    """The live form of one data module.

    Args:
        sim: the simulator driving the datacenter.
        fabric: the network between replicas and clients.
        name: the data module's name (S1, S2, ...).
        placement: replica allocations from :class:`ReplicaPlacer`.
        consistency: contract from the distributed aspect.
        preference: operation preference from the distributed aspect.
        sequencer: optional in-network sequencer; when present, sequential
            writes are ordered by the switch instead of the primary.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        placement: PlacementResult,
        consistency: ConsistencyLevel = ConsistencyLevel.SEQUENTIAL,
        preference: OpPreference = OpPreference.NONE,
        sequencer=None,
    ):
        if not placement.allocations:
            raise ValueError("store requires at least one replica allocation")
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.placement = placement
        self.consistency = consistency
        self.preference = preference
        self.sequencer = sequencer
        self.replicas: List[Replica] = [
            Replica(device=a.device, location=a.device.location)
            for a in placement.allocations
        ]
        self._version_counter: Dict[str, int] = {}
        # Per-store, so synthetic bulk-write keys depend only on this
        # run's operation order, not on how many stores ran before it
        # in the same process (cross-run metric determinism).
        self._op_ids = itertools.count()
        #: (key, version, value, size) pending propagation under RELEASE
        self._pending_release: List[Tuple[str, int, Any, int]] = []
        self.op_log: List[OpStats] = []

    # -- replica selection ---------------------------------------------------

    @property
    def primary(self) -> Replica:
        return self.replicas[0]

    @property
    def backups(self) -> List[Replica]:
        return self.replicas[1:]

    def live_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if not r.device.failed]

    def nearest_replica(self, client: Location) -> Replica:
        live = self.live_replicas()
        if not live:
            raise RuntimeError(f"store {self.name}: all replicas failed")
        return min(
            live,
            key=lambda r: (self.fabric.latency(client, r.location), r.device.seq),
        )

    # -- write protocols -------------------------------------------------------

    def write(self, client: Location, key: str, value: Any, size_bytes: int):
        """Generator: run under ``sim.process``; returns :class:`OpStats`."""
        if self.consistency == ConsistencyLevel.SEQUENTIAL:
            if self.sequencer is not None:
                return self._write_sequenced(client, key, value, size_bytes)
            return self._write_primary_sync(client, key, value, size_bytes)
        if self.consistency == ConsistencyLevel.RELEASE:
            return self._write_release(client, key, value, size_bytes)
        return self._write_eventual(client, key, value, size_bytes)

    def _next_version(self, key: str) -> int:
        self._version_counter[key] = self._version_counter.get(key, 0) + 1
        return self._version_counter[key]

    def _write_primary_sync(self, client: Location, key: str, value, size_bytes: int):
        """Primary-ordered, fully synchronous replication (sequential)."""
        stats = OpStats(op="write", key=key)
        start = self.sim.now
        primary = self.primary
        if primary.device.failed:
            primary = self.nearest_replica(client)

        yield self.fabric.send(client, primary.location, size_bytes)
        stats.messages += 1
        stats.bytes_moved += size_bytes

        version = self._next_version(key)
        yield self.sim.timeout(primary.media_time(size_bytes))
        primary.apply(key, version, value)

        # Parallel propagate to live backups, wait for all acks.
        acks = []
        for backup in self.backups:
            if backup.device.failed:
                continue
            acks.append(
                self.sim.process(
                    self._propagate_one(primary.location, backup, key, version,
                                        value, size_bytes)
                )
            )
            stats.messages += 2  # data out + ack back
            stats.bytes_moved += size_bytes + ACK_BYTES
        if acks:
            yield self.sim.all_of(acks)

        yield self.fabric.send(primary.location, client, ACK_BYTES)
        stats.messages += 1
        stats.bytes_moved += ACK_BYTES
        stats.latency_s = self.sim.now - start
        stats.served_by = primary.device.device_id
        self.op_log.append(stats)
        return stats

    def _propagate_one(self, src: Location, backup: Replica, key: str,
                       version: int, value, size_bytes: int):
        yield self.fabric.send(src, backup.location, size_bytes)
        yield self.sim.timeout(backup.media_time(size_bytes))
        backup.apply(key, version, value)
        yield self.fabric.send(backup.location, src, ACK_BYTES)

    def _write_sequenced(self, client: Location, key: str, value, size_bytes: int):
        """In-network ordering: the switch stamps a global sequence and
        multicasts; replicas apply in stamp order; all reply to the client,
        which waits for every live replica (NOPaxos-style fast path)."""
        stats = OpStats(op="write", key=key)
        start = self.sim.now
        version = self._next_version(key)
        live = self.live_replicas()

        sends = self.fabric.multicast_via(
            client,
            [replica.location for replica in live],
            size_bytes,
            payload=(key, version, value),
            via=self.sequencer.switch_location,
        )
        stats.messages += len(live)
        stats.bytes_moved += size_bytes * len(live)
        deliveries = yield self.sim.all_of(sends)

        applies = []
        for replica, message in zip(live, deliveries):
            applies.append(
                self.sim.process(
                    self._apply_sequenced(replica, message, size_bytes)
                )
            )
            stats.messages += 1  # reply to client
            stats.bytes_moved += ACK_BYTES
        replies = [
            self.sim.process(self._reply_after(apply, replica.location, client))
            for apply, replica in zip(applies, live)
        ]
        yield self.sim.all_of(replies)

        stats.latency_s = self.sim.now - start
        stats.served_by = "sequencer"
        self.op_log.append(stats)
        return stats

    def _apply_sequenced(self, replica: Replica, message, size_bytes: int):
        key, version, value = message.payload
        sequence = message.sequence
        replica.reorder_buffer[sequence] = (key, version, value)
        # Apply every contiguously available stamp.
        while replica.next_sequence in replica.reorder_buffer:
            k, v, val = replica.reorder_buffer.pop(replica.next_sequence)
            yield self.sim.timeout(replica.media_time(size_bytes))
            replica.apply(k, v, val)
            replica.next_sequence += 1

    def _reply_after(self, apply_process, src: Location, client: Location):
        yield apply_process
        yield self.fabric.send(src, client, ACK_BYTES)

    def _write_release(self, client: Location, key: str, value, size_bytes: int):
        """Apply at primary, buffer propagation until release()."""
        stats = OpStats(op="write", key=key)
        start = self.sim.now
        primary = self.primary
        yield self.fabric.send(client, primary.location, size_bytes)
        stats.messages += 1
        stats.bytes_moved += size_bytes
        version = self._next_version(key)
        yield self.sim.timeout(primary.media_time(size_bytes))
        primary.apply(key, version, value)
        self._pending_release.append((key, version, value, size_bytes))
        yield self.fabric.send(primary.location, client, ACK_BYTES)
        stats.messages += 1
        stats.bytes_moved += ACK_BYTES
        stats.latency_s = self.sim.now - start
        stats.served_by = primary.device.device_id
        self.op_log.append(stats)
        return stats

    def release(self, client: Location):
        """Flush buffered release-consistency writes to all backups."""
        stats = OpStats(op="release", key="*")
        start = self.sim.now
        pending, self._pending_release = self._pending_release, []
        if pending:
            batch_bytes = sum(p[3] for p in pending)
            acks = []
            for backup in self.backups:
                if backup.device.failed:
                    continue
                acks.append(
                    self.sim.process(
                        self._propagate_batch(backup, pending, batch_bytes)
                    )
                )
                stats.messages += 2
                stats.bytes_moved += batch_bytes + ACK_BYTES
            if acks:
                yield self.sim.all_of(acks)
        yield self.fabric.send(self.primary.location, client, ACK_BYTES)
        stats.messages += 1
        stats.bytes_moved += ACK_BYTES
        stats.latency_s = self.sim.now - start
        self.op_log.append(stats)
        return stats

    def acquire(self, client: Location):
        """Release-consistency acquire: synchronize the reader's nearest
        replica with the primary before a critical section.

        After ``yield``-ing an acquire, reads served by that replica see
        every write that was *released* before the acquire — the RC
        contract.  Writes still buffered at the primary (not yet
        released) remain invisible: also the contract.  Approximation:
        a key holding BOTH a released and a newer unreleased write is
        skipped entirely (the store keeps only the newest version per
        key, and leaking the unreleased one would be worse than serving
        the replica's older view).  Returns :class:`OpStats`.
        """
        stats = OpStats(op="acquire", key="*")
        start = self.sim.now
        target = self.nearest_replica(client)
        primary = self.primary
        if target is not primary and not primary.device.failed:
            missing = [
                (key, version, value)
                for key, (version, value) in sorted(primary.data.items())
                if target.applied_version.get(key, 0) < version
                and not any(key == p[0] for p in self._pending_release)
            ]
            if missing:
                sync_bytes = sum(_size_of(v) for _k, _ver, v in missing)
                yield self.fabric.send(target.location, primary.location,
                                       REQUEST_BYTES)
                yield self.fabric.send(primary.location, target.location,
                                       sync_bytes)
                yield self.sim.timeout(target.media_time(sync_bytes))
                for key, version, value in missing:
                    target.apply(key, version, value)
                stats.messages = 2
                stats.bytes_moved = REQUEST_BYTES + sync_bytes
        stats.latency_s = self.sim.now - start
        stats.served_by = target.device.device_id
        self.op_log.append(stats)
        return stats

    def _propagate_batch(self, backup: Replica, pending, batch_bytes: int):
        yield self.fabric.send(self.primary.location, backup.location, batch_bytes)
        yield self.sim.timeout(backup.media_time(batch_bytes))
        for key, version, value, _size in pending:
            backup.apply(key, version, value)
        yield self.fabric.send(backup.location, self.primary.location, ACK_BYTES)

    def _write_eventual(self, client: Location, key: str, value, size_bytes: int):
        """Ack at nearest replica; propagate asynchronously."""
        stats = OpStats(op="write", key=key)
        start = self.sim.now
        target = self.nearest_replica(client)
        yield self.fabric.send(client, target.location, size_bytes)
        stats.messages += 1
        stats.bytes_moved += size_bytes
        version = self._next_version(key)
        yield self.sim.timeout(target.media_time(size_bytes))
        target.apply(key, version, value)
        yield self.fabric.send(target.location, client, ACK_BYTES)
        stats.messages += 1
        stats.bytes_moved += ACK_BYTES
        stats.latency_s = self.sim.now - start
        stats.served_by = target.device.device_id
        # Background anti-entropy: not charged to the client's latency.
        for other in self.replicas:
            if other is target or other.device.failed:
                continue
            self.sim.process(
                self._propagate_one(target.location, other, key, version,
                                    value, size_bytes)
            )
            stats.messages += 2
            stats.bytes_moved += size_bytes + ACK_BYTES
        self.op_log.append(stats)
        return stats

    # -- read protocol -----------------------------------------------------------

    def read(self, client: Location, key: str):
        """Generator returning ``(value, OpStats)``."""
        stats = OpStats(op="read", key=key)
        start = self.sim.now
        if (
            self.consistency == ConsistencyLevel.SEQUENTIAL
            and self.preference != OpPreference.READER
            and not self.primary.device.failed
        ):
            target = self.primary
        else:
            target = self.nearest_replica(client)

        yield self.fabric.send(client, target.location, REQUEST_BYTES)
        version, value = target.data.get(key, (0, None))
        size = max(REQUEST_BYTES, 0 if value is None else _size_of(value))
        yield self.sim.timeout(target.media_time(size))
        yield self.fabric.send(target.location, client, size)

        stats.messages = 2
        stats.bytes_moved = REQUEST_BYTES + size
        stats.latency_s = self.sim.now - start
        stats.served_by = target.device.device_id
        stats.staleness = self._version_counter.get(key, 0) - version
        self.op_log.append(stats)
        return value, stats

    def write_quorum(self, client: Location, key: str, value: Any,
                     size_bytes: int, quorum: Optional[int] = None):
        """Generator: Dynamo-style W-quorum write.

        Sends the write to all live replicas in parallel but acks the
        client after ``quorum`` of them applied (default: majority).
        The remaining replicas finish in the background.  Paired with
        :meth:`read_quorum` at R where R + W > N, reads see the latest
        acknowledged write.  Returns :class:`OpStats`.
        """
        stats = OpStats(op="write-quorum", key=key)
        start = self.sim.now
        live = self.live_replicas()
        if quorum is None:
            quorum = len(self.replicas) // 2 + 1
        if quorum < 1 or quorum > len(live):
            raise ValueError(
                f"write quorum {quorum} impossible with {len(live)} live "
                f"replicas"
            )
        version = self._next_version(key)

        def deliver(replica: Replica):
            yield self.fabric.send(client, replica.location, size_bytes)
            yield self.sim.timeout(replica.media_time(size_bytes))
            replica.apply(key, version, value)
            yield self.fabric.send(replica.location, client, ACK_BYTES)

        deliveries = [self.sim.process(deliver(r)) for r in live]
        stats.messages = 2 * len(live)
        stats.bytes_moved = (size_bytes + ACK_BYTES) * len(live)
        acked = 0
        pending = list(deliveries)
        while acked < quorum and pending:
            yield self.sim.any_of(pending)
            pending = [p for p in pending if not p.processed]
            acked = len(deliveries) - len(pending)
        stats.latency_s = self.sim.now - start
        stats.served_by = f"quorum-{quorum}"
        self.op_log.append(stats)
        return stats

    def read_quorum(self, client: Location, key: str, quorum: Optional[int] = None):
        """Generator: majority-quorum read with read-repair.

        Queries ``quorum`` live replicas in parallel (default: majority of
        the replication factor), returns the freshest version among them,
        and repairs any stale replica it touched in the background — the
        standard Dynamo-style construction, here available to users whose
        distributed aspect pairs eventual consistency with read quorums.
        Returns ``(value, OpStats)``; the stats' ``staleness`` is measured
        against the global latest version (0 whenever the quorum
        intersects the freshest replica).
        """
        stats = OpStats(op="read-quorum", key=key)
        start = self.sim.now
        live = self.live_replicas()
        if quorum is None:
            quorum = len(self.replicas) // 2 + 1
        if quorum < 1 or quorum > len(live):
            raise ValueError(
                f"quorum {quorum} impossible with {len(live)} live replicas"
            )
        targets = sorted(
            live, key=lambda r: (self.fabric.latency(client, r.location),
                                 r.device.seq)
        )[:quorum]

        def query(replica: Replica):
            yield self.fabric.send(client, replica.location, REQUEST_BYTES)
            version, value = replica.data.get(key, (0, None))
            size = max(REQUEST_BYTES, 0 if value is None else _size_of(value))
            yield self.sim.timeout(replica.media_time(size))
            yield self.fabric.send(replica.location, client, size)
            return replica, version, value, size

        responses = yield self.sim.all_of(
            [self.sim.process(query(replica)) for replica in targets]
        )
        stats.messages = 2 * quorum
        stats.bytes_moved = sum(REQUEST_BYTES + r[3] for r in responses)

        best_replica, best_version, best_value, _best_size = max(
            responses, key=lambda r: r[1]
        )
        # Read-repair: push the winning version to the stale quorum
        # members (background; not charged to the reader's latency).
        for replica, version, _value, _size in responses:
            if version < best_version:
                self.sim.process(
                    self._propagate_one(
                        best_replica.location, replica, key, best_version,
                        best_value, _size_of(best_value),
                    )
                )
                stats.messages += 2
        stats.latency_s = self.sim.now - start
        stats.served_by = best_replica.device.device_id
        stats.staleness = self._version_counter.get(key, 0) - best_version
        self.op_log.append(stats)
        return best_value, stats

    def heal(self, placer) -> int:
        """Re-replicate after device failures (§3.4 availability).

        Replaces every replica whose device has failed: allocates one
        replacement per casualty through ``placer`` (a
        :class:`~repro.distsem.replication.ReplicaPlacer`), preferring
        racks the survivors do not occupy, then copies the freshest
        surviving state onto the replacements.  Returns the number of
        replicas rebuilt.  State transfer runs in the background (drain
        the sim to wait for it).
        """
        dead = [r for r in self.replicas if r.device.failed]
        if not dead:
            return 0
        survivors = self.live_replicas()
        if not survivors:
            raise RuntimeError(
                f"store {self.name}: no surviving replica to heal from"
            )
        source = survivors[0]
        size = self.placement.allocations[0].amount
        tenant = self.placement.allocations[0].tenant
        rebuilt = 0
        for casualty in dead:
            avoid = {
                (r.location.pod, r.location.rack) for r in self.live_replicas()
            }
            replacement_alloc = placer.place_replacement(size, tenant, avoid)
            replacement = Replica(
                device=replacement_alloc.device,
                location=replacement_alloc.device.location,
            )
            index = self.replicas.index(casualty)
            self.replicas[index] = replacement
            self.placement.allocations[index] = replacement_alloc
            for key, (version, value) in sorted(source.data.items()):
                self.sim.process(
                    self._propagate_one(
                        source.location, replacement, key, version, value,
                        _size_of(value),
                    )
                )
            rebuilt += 1
        return rebuilt

    # -- bulk transfers (module-level dataflow) ---------------------------------

    def bulk_read(self, client: Location, nbytes: int):
        """Generator: stream ``nbytes`` of this data module to a task.

        Routed like a read (primary under sequential without reader
        preference, else nearest replica); returns :class:`OpStats`.
        """
        stats = OpStats(op="bulk-read", key="*")
        start = self.sim.now
        if (
            self.consistency == ConsistencyLevel.SEQUENTIAL
            and self.preference != OpPreference.READER
            and not self.primary.device.failed
        ):
            target = self.primary
        else:
            target = self.nearest_replica(client)
        yield self.fabric.send(client, target.location, REQUEST_BYTES)
        yield self.sim.timeout(target.media_time(nbytes))
        yield self.fabric.send(target.location, client, nbytes)
        stats.messages = 2
        stats.bytes_moved = REQUEST_BYTES + nbytes
        stats.latency_s = self.sim.now - start
        stats.served_by = target.device.device_id
        self.op_log.append(stats)
        return stats

    def bulk_write(self, client: Location, nbytes: int, tag: str = "bulk"):
        """Generator: persist ``nbytes`` from a task into this data module,
        paying the store's consistency protocol; returns :class:`OpStats`."""
        key = f"__{tag}-{next(self._op_ids)}"
        stats = yield self.sim.process(
            self.write(client, key, _Blob(nbytes), nbytes)
        )
        return stats

    # -- aggregate accounting -------------------------------------------------

    def totals(self) -> Dict[str, float]:
        reads = [o for o in self.op_log if o.op == "read"]
        writes = [o for o in self.op_log if o.op == "write"]
        return {
            "reads": len(reads),
            "writes": len(writes),
            "mean_read_latency_s": _mean(o.latency_s for o in reads),
            "mean_write_latency_s": _mean(o.latency_s for o in writes),
            "messages": sum(o.messages for o in self.op_log),
            "bytes_moved": sum(o.bytes_moved for o in self.op_log),
            "stale_reads": sum(1 for o in reads if o.staleness > 0),
        }


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


class _Blob:
    """Opaque sized payload used by bulk writes."""

    def __init__(self, size_bytes: int):
        self.size_bytes = size_bytes

    def __repr__(self) -> str:
        return f"_Blob({self.size_bytes})"


def _size_of(value: Any) -> int:
    if isinstance(value, _Blob):
        return value.size_bytes
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    return 64
