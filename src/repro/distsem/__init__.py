"""Distributed semantics (paper §3.4).

UDC users define *how their applications run distributedly* per module:
replication factor, consistency level, operation preference, failure
domains, and failure-handling strategy — without building the distributed
systems that implement them.  This package is that implementation:

* :mod:`~repro.distsem.store` — a replicated object store whose replicas
  live on simulated pool devices and talk over the fabric;
* :mod:`~repro.distsem.consistency` — consistency levels (sequential,
  release, eventual) and read/write preference, as actual message
  protocols with measurable latency, message counts, and staleness;
* :mod:`~repro.distsem.replication` — replica placement with
  failure-domain anti-affinity and quorum accounting;
* :mod:`~repro.distsem.checkpoint` — user-defined checkpoints to storage
  devices, with restore;
* :mod:`~repro.distsem.failures` — failure domains and deterministic
  failure injection (device death interrupts running module processes);
* :mod:`~repro.distsem.recovery` — re-execute vs checkpoint-restore
  strategies (E14);
* :mod:`~repro.distsem.network_order` — in-network sequencing on a
  programmable switch vs software consensus (E11, the NOPaxos-style design
  §3.4 cites).
"""

from repro.distsem.checkpoint import Checkpoint, CheckpointStore
from repro.distsem.consistency import ConsistencyLevel, OpPreference
from repro.distsem.failures import Failure, FailureDomain, FailureInjector
from repro.distsem.network_order import (
    OrderingScheme,
    ReplicationProtocolResult,
    SwitchSequencer,
    run_ordered_writes,
)
from repro.distsem.recovery import RecoveryStrategy
from repro.distsem.replication import ReplicaPlacer, ReplicationPolicy
from repro.distsem.store import OpStats, ReplicatedStore

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "ConsistencyLevel",
    "Failure",
    "FailureDomain",
    "FailureInjector",
    "OpPreference",
    "OpStats",
    "OrderingScheme",
    "RecoveryStrategy",
    "ReplicaPlacer",
    "ReplicatedStore",
    "ReplicationPolicy",
    "ReplicationProtocolResult",
    "SwitchSequencer",
    "run_ordered_writes",
]
