"""User-definable resilience policies (extending paper §3.4).

The paper lets users declare *how* their modules survive failures; the
seed runtime only modeled crash-stop domain failures with rerun or
checkpoint recovery.  Real clouds mostly see *gray* failures — stragglers,
partial partitions, overload — and the operational answers are policies,
not mechanisms: bounded retries with backoff, deadlines, speculative
hedging, and circuit breakers.  This module defines those policies as
user-declarable values; the runtime and scheduler interpret them.

All randomness (retry jitter) is drawn from a caller-supplied
:class:`random.Random` stream (see :class:`repro.simulator.rng.RngRegistry`),
so resilience behavior is exactly reproducible for a given run seed.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerRegistry",
    "DeadlineMiss",
    "HedgeCancelled",
    "HedgePolicy",
    "Preempted",
    "RetryPolicy",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution with exponential backoff and jitter.

    ``max_attempts`` counts *recovery* attempts after the first execution
    (so 3 means: run, then up to 3 re-runs).  Backoff for attempt *n*
    (1-based) is ``base_backoff_s * multiplier**(n-1)``, capped at
    ``max_backoff_s``, then jittered multiplicatively by up to ±``jitter``
    (a fraction).  Jitter is drawn from a named RNG stream, never the
    global RNG, so two runs with the same seed back off identically.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.5
    multiplier: float = 2.0
    max_backoff_s: float = 60.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.max_attempts < 0:
            raise ValueError(f"max_attempts must be >= 0, got {self.max_attempts}")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Delay before re-execution number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter <= 0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class HedgePolicy:
    """Speculative duplicate execution against stragglers.

    When an attempt runs past its trigger point, the runtime launches a
    duplicate of the module on a *different* device; the first finisher
    wins and the loser is cancelled, its allocation released (both
    allocations are billed for the time they were held — hedging trades
    money for tail latency).

    The trigger is either an absolute ``after_s``, or ``latency_factor``
    times the attempt's expected wall time (startup + compute) — the
    deterministic-simulation stand-in for "hedge at the p95 latency
    quantile" that production systems use.
    """

    after_s: Optional[float] = None
    latency_factor: Optional[float] = None
    max_hedges: int = 1

    def __post_init__(self):
        if (self.after_s is None) == (self.latency_factor is None):
            raise ValueError(
                "specify exactly one of after_s / latency_factor"
            )
        if self.after_s is not None and self.after_s <= 0:
            raise ValueError(f"after_s must be positive, got {self.after_s}")
        if self.latency_factor is not None and self.latency_factor <= 0:
            raise ValueError(
                f"latency_factor must be positive, got {self.latency_factor}"
            )
        if self.max_hedges < 1:
            raise ValueError(f"max_hedges must be >= 1, got {self.max_hedges}")

    def trigger_delay_s(self, expected_wall_s: float) -> float:
        """When to launch the duplicate, measured from attempt start."""
        if self.after_s is not None:
            return self.after_s
        return self.latency_factor * expected_wall_s


@dataclass(frozen=True)
class DeadlineMiss:
    """Interrupt cause delivered to a task that exceeded its deadline."""

    module: str
    deadline_s: float


@dataclass(frozen=True)
class HedgeCancelled:
    """Interrupt cause delivered to the losing attempt of a hedged task."""

    module: str
    winner: str  # "primary" | "hedge"


@dataclass(frozen=True)
class Preempted:
    """Interrupt cause delivered to a spot-tier task whose capacity was
    reclaimed for firm-tier work.

    Like :class:`HedgeCancelled`, the interrupted process just vanishes —
    the preemptor (:meth:`repro.core.runtime.UDCRuntime.preempt`) does
    all bookkeeping: settling meters, releasing allocations, and
    re-queuing the submission through the admission machinery."""

    module: str
    #: the firm-tier tenant whose submission triggered the reclaim
    by_tenant: str


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Failure-rate gate for one device (or rack).

    Opens after ``threshold`` failures within ``window_s``; while open the
    scheduler skips the device.  After ``cooldown_s`` the breaker
    half-opens: one trial placement is allowed — success closes it,
    another failure re-opens it.
    """

    key: str
    threshold: int = 3
    window_s: float = 60.0
    cooldown_s: float = 120.0
    state: BreakerState = BreakerState.CLOSED
    opened_at: float = 0.0
    _failures: List[float] = field(default_factory=list)

    def record_failure(self, now: float) -> bool:
        """Note a failure; returns True when this transition *opens* it."""
        if self.state == BreakerState.HALF_OPEN:
            # The trial failed: straight back to open.
            self.state = BreakerState.OPEN
            self.opened_at = now
            self._failures.clear()
            return True
        self._failures = [
            t for t in self._failures if now - t <= self.window_s
        ]
        self._failures.append(now)
        if self.state == BreakerState.CLOSED \
                and len(self._failures) >= self.threshold:
            self.state = BreakerState.OPEN
            self.opened_at = now
            self._failures.clear()
            return True
        return False

    def record_success(self, now: float) -> None:
        if self.state == BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
        self._failures.clear()

    def allows(self, now: float) -> bool:
        """Whether placements may target this key right now.

        An open breaker past its cooldown transitions to half-open and
        grants the trial.
        """
        if self.state == BreakerState.OPEN:
            if now - self.opened_at >= self.cooldown_s:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True


class CircuitBreakerRegistry:
    """All breakers for one runtime, keyed by device id (or rack name)."""

    def __init__(
        self,
        threshold: int = 3,
        window_s: float = 60.0,
        cooldown_s: float = 120.0,
        enabled: bool = True,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.enabled = enabled
        self.breakers: Dict[str, CircuitBreaker] = {}
        #: total open transitions, for reports
        self.opens = 0
        #: optional Telemetry sink (wired by the runtime): every open
        #: transition increments ``udc_breaker_trips_total`` and the
        #: ``udc_breakers_open`` gauge tracks the currently-open count
        self.telemetry = None

    def breaker(self, key: str) -> CircuitBreaker:
        if key not in self.breakers:
            self.breakers[key] = CircuitBreaker(
                key=key,
                threshold=self.threshold,
                window_s=self.window_s,
                cooldown_s=self.cooldown_s,
            )
        return self.breakers[key]

    def record_failure(self, key: str, now: float) -> bool:
        """Returns True when the breaker newly opened."""
        if not self.enabled:
            return False
        opened = self.breaker(key).record_failure(now)
        if opened:
            self.opens += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.inc("udc_breaker_trips_total")
                self.telemetry.gauge_set(
                    "udc_breakers_open", float(len(self.open_keys(now)))
                )
        return opened

    def record_success(self, key: str, now: float) -> None:
        if not self.enabled:
            return
        if key in self.breakers:
            self.breakers[key].record_success(now)

    def allows(self, key: str, now: float) -> bool:
        if not self.enabled or key not in self.breakers:
            return True
        return self.breakers[key].allows(now)

    def open_keys(self, now: float) -> List[str]:
        return sorted(
            key for key, b in self.breakers.items()
            if b.state == BreakerState.OPEN and now - b.opened_at < b.cooldown_s
        )
