"""Failure-handling strategies: re-execute vs checkpoint-restore (§3.4).

The user's distributed aspect names, per failure domain, *"whether to
re-execute a module or recover from a user-defined checkpoint."*  The two
strategies here are consumed by the UDC runtime's failure listener and by
benchmark E14:

* **RERUN** — lose all progress; pay the module's full execution again.
* **CHECKPOINT_RESTORE** — pay a restore transfer, then re-execute only
  the work after the last snapshot.  Cheaper for long modules, but the
  running module pays periodic checkpoint overhead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.distsem.checkpoint import Checkpoint, CheckpointStore
from repro.hardware.fabric import Location

__all__ = ["RecoveryOutcome", "RecoveryStrategy", "plan_recovery"]


class RecoveryStrategy(enum.Enum):
    """User-selectable failure handling per module / failure domain."""

    NONE = "none"                # failure is fatal for this module
    RERUN = "rerun"
    CHECKPOINT_RESTORE = "checkpoint-restore"


@dataclass(frozen=True)
class RecoveryOutcome:
    """What recovery will cost, computed before re-execution starts."""

    strategy: RecoveryStrategy
    #: progress retained after recovery, in [0, 1]
    resume_progress: float
    #: the snapshot used, when any
    checkpoint: Optional[Checkpoint] = None


def plan_recovery(
    strategy: RecoveryStrategy,
    module: str,
    store: Optional[CheckpointStore],
) -> RecoveryOutcome:
    """Decide where re-execution resumes.

    CHECKPOINT_RESTORE without a snapshot (module failed before its first
    checkpoint, or no store was provisioned) degrades to a full rerun —
    the semantics users get from real checkpointing systems.
    """
    if strategy == RecoveryStrategy.CHECKPOINT_RESTORE and store is not None:
        snapshot = store.latest(module)
        if snapshot is not None:
            return RecoveryOutcome(
                strategy=strategy,
                resume_progress=snapshot.progress,
                checkpoint=snapshot,
            )
    if strategy == RecoveryStrategy.NONE:
        return RecoveryOutcome(strategy=strategy, resume_progress=0.0)
    return RecoveryOutcome(strategy=RecoveryStrategy.RERUN, resume_progress=0.0)


def restore_process(
    outcome: RecoveryOutcome, store: CheckpointStore, destination: Location
):
    """Generator: perform the restore transfer for a planned recovery.

    Yields the checkpoint fetch; returns the resumed progress fraction.
    """
    if outcome.checkpoint is None:
        return 0.0
    yield from store.restore(outcome.checkpoint.module, destination)
    return outcome.resume_progress
