"""Failure domains and deterministic failure injection (paper §3.4).

Users *"can define the failure domains in their programs, with the
understanding that different domains could fail independently while code
and data within a domain will fail as a whole."*

:class:`FailureDomain` groups devices (and the module processes running on
them); :class:`FailureInjector` schedules domain failures on the simulator
clock — marking devices failed and interrupting every registered process —
and optional repairs.  All randomness comes from a named RNG stream so
failure schedules are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hardware.devices import Device
from repro.simulator.engine import Process, Simulator
from repro.simulator.rng import RngRegistry

__all__ = ["Failure", "FailureDomain", "FailureInjector"]


@dataclass(frozen=True)
class Failure:
    """Carried as the Interrupt cause into affected processes."""

    domain: str
    at: float
    permanent: bool = False


@dataclass
class FailureDomain:
    """A named blast radius: devices plus the processes pinned to them."""

    name: str
    devices: List[Device] = field(default_factory=list)
    processes: List[Process] = field(default_factory=list)
    failed: bool = False

    def register_process(self, process: Process) -> None:
        self.processes.append(process)

    def fail(self, failure: Failure) -> None:
        self.failed = True
        for device in self.devices:
            device.failed = True
        for process in self.processes:
            process.interrupt(failure)
        self.processes = [p for p in self.processes if p.is_alive]

    def repair(self) -> None:
        self.failed = False
        for device in self.devices:
            device.failed = False


class FailureInjector:
    """Schedules failures against domains on the simulation clock."""

    def __init__(self, sim: Simulator, rng: Optional[RngRegistry] = None):
        self.sim = sim
        self.rng = (rng or RngRegistry(0)).stream("failures")
        self.domains: Dict[str, FailureDomain] = {}
        self.injected: List[Failure] = []
        #: observers notified on each failure (the runtime's recovery hook)
        self.listeners: List[Callable[[Failure, FailureDomain], None]] = []

    def domain(self, name: str) -> FailureDomain:
        if name not in self.domains:
            self.domains[name] = FailureDomain(name=name)
        return self.domains[name]

    def subscribe(self, listener: Callable[[Failure, FailureDomain], None]) -> None:
        self.listeners.append(listener)

    def fail_at(
        self, when: float, domain_name: str, repair_after: Optional[float] = None
    ) -> None:
        """Fail ``domain_name`` at absolute sim time ``when``; optionally
        repair it ``repair_after`` seconds later."""

        def inject():
            domain = self.domain(domain_name)
            failure = Failure(
                domain=domain_name, at=self.sim.now, permanent=repair_after is None
            )
            self.injected.append(failure)
            domain.fail(failure)
            for listener in self.listeners:
                listener(failure, domain)
            if repair_after is not None:
                self.sim.call_at(self.sim.now + repair_after, domain.repair)

        self.sim.call_at(when, inject)

    def random_failures(
        self,
        domain_names: List[str],
        horizon_s: float,
        mtbf_s: float,
        repair_after: Optional[float] = None,
    ) -> int:
        """Poisson-ish failure schedule: each domain fails with exponential
        inter-arrival ``mtbf_s`` within ``horizon_s``.  Returns the number
        of failures scheduled."""
        scheduled = 0
        for name in domain_names:
            t = self.rng.expovariate(1.0 / mtbf_s)
            while t < horizon_s:
                self.fail_at(t, name, repair_after=repair_after)
                scheduled += 1
                t += self.rng.expovariate(1.0 / mtbf_s)
        return scheduled
