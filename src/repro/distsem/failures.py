"""Failure domains and deterministic failure injection (paper §3.4).

Users *"can define the failure domains in their programs, with the
understanding that different domains could fail independently while code
and data within a domain will fail as a whole."*

:class:`FailureDomain` groups devices (and the module processes running on
them); :class:`FailureInjector` schedules domain failures on the simulator
clock — marking devices failed and interrupting every registered process —
and optional repairs.  All randomness comes from a named RNG stream so
failure schedules are reproducible.

Beyond crash-stop, the injector models the *gray* failures real clouds
see (E22): straggler devices whose compute chunks stretch by a factor,
fabric partitions that stall (not drop) cross-rack transfers, and
warm-pool exhaustion that turns every environment launch into a cold
start.  Gray failures carry a ``kind`` other than ``"crash"`` so
crash-recovery listeners (store healing, migration) can ignore them —
the resilience *policies* (retry, hedge, deadline) are what absorb them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.hardware.devices import Device
from repro.simulator.engine import Process, Simulator
from repro.simulator.rng import RngRegistry

__all__ = ["Failure", "FailureDomain", "FailureInjector"]


@dataclass(frozen=True)
class Failure:
    """Carried as the Interrupt cause into affected processes.

    ``kind`` distinguishes crash-stop (``"crash"``) from gray modes:
    ``"slow"`` (straggler device), ``"partition"`` (fabric cut),
    ``"warm-exhaust"`` (warm-pool outage).  Only crashes interrupt
    processes and trip crash-recovery; gray failures degrade timing.
    """

    domain: str
    at: float
    permanent: bool = False
    kind: str = "crash"


@dataclass
class FailureDomain:
    """A named blast radius: devices plus the processes pinned to them."""

    name: str
    devices: List[Device] = field(default_factory=list)
    processes: List[Process] = field(default_factory=list)
    failed: bool = False
    #: most recent crash applied to this domain; scheduled repairs are
    #: only honored for the failure they were paired with, so a stale
    #: repair cannot resurrect a domain that failed again (permanently
    #: or otherwise) in the meantime.
    last_failure: Optional[Failure] = None

    def register_process(self, process: Process) -> None:
        self.processes.append(process)

    def fail(self, failure: Failure) -> None:
        self.failed = True
        self.last_failure = failure
        for device in self.devices:
            device.failed = True
        for process in self.processes:
            process.interrupt(failure)
        self.processes = [p for p in self.processes if p.is_alive]

    def repair(self, failure: Optional[Failure] = None) -> None:
        """Un-fail the domain.

        When ``failure`` is given (the scheduled-repair path), the repair
        only applies if that failure is still the domain's most recent
        one — otherwise a later failure owns the domain's state and this
        repair is stale.
        """
        if failure is not None and failure is not self.last_failure:
            return
        self.failed = False
        for device in self.devices:
            device.failed = False


class FailureInjector:
    """Schedules failures against domains on the simulation clock.

    ``fabric`` and ``warm_pool`` are only needed for the gray injectors
    (:meth:`partition_at`, :meth:`exhaust_warm_pool_at`); crash and
    straggler injection work without them.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[RngRegistry] = None,
        fabric=None,
        warm_pool=None,
    ):
        self.sim = sim
        self.rng = (rng or RngRegistry(0)).stream("failures")
        self.fabric = fabric
        self.warm_pool = warm_pool
        self.domains: Dict[str, FailureDomain] = {}
        self.injected: List[Failure] = []
        #: observers notified on each failure (the runtime's recovery hook)
        self.listeners: List[Callable[[Failure, FailureDomain], None]] = []

    def domain(self, name: str) -> FailureDomain:
        if name not in self.domains:
            self.domains[name] = FailureDomain(name=name)
        return self.domains[name]

    def subscribe(self, listener: Callable[[Failure, FailureDomain], None]) -> None:
        self.listeners.append(listener)

    def _notify(self, failure: Failure, domain: Optional[FailureDomain]) -> None:
        self.injected.append(failure)
        for listener in self.listeners:
            listener(failure, domain)

    # -- crash-stop ---------------------------------------------------------

    def fail_at(
        self, when: float, domain_name: str, repair_after: Optional[float] = None
    ) -> None:
        """Fail ``domain_name`` at absolute sim time ``when``; optionally
        repair it ``repair_after`` seconds later."""

        def inject():
            domain = self.domain(domain_name)
            failure = Failure(
                domain=domain_name, at=self.sim.now, permanent=repair_after is None
            )
            domain.fail(failure)
            self._notify(failure, domain)
            if repair_after is not None:
                # Bind the repair to *this* failure: if the domain fails
                # again before the repair fires, the repair is stale and
                # must not resurrect it.
                self.sim.call_at(
                    self.sim.now + repair_after,
                    lambda: domain.repair(failure),
                )

        self.sim.call_at(when, inject)

    # -- gray failures (E22) ------------------------------------------------

    def slow_at(
        self,
        when: float,
        domain_name: str,
        factor: float,
        duration_s: Optional[float] = None,
    ) -> None:
        """Make every device in ``domain_name`` a straggler at ``when``:
        compute chunks stretch by ``factor`` until ``duration_s`` elapses
        (or forever when None).  Processes are *not* interrupted — that is
        what makes the failure gray."""
        if factor <= 1.0:
            raise ValueError(f"slow factor must be > 1, got {factor}")

        def inject():
            domain = self.domain(domain_name)
            failure = Failure(
                domain=domain_name, at=self.sim.now,
                permanent=duration_s is None, kind="slow",
            )
            for device in domain.devices:
                device.slow_factor = factor
            self._notify(failure, domain)
            if duration_s is not None:
                def restore():
                    for device in domain.devices:
                        # only undo our own degradation; a later, stronger
                        # slow fault keeps its factor
                        if device.slow_factor == factor:
                            device.slow_factor = 1.0
                self.sim.call_at(self.sim.now + duration_s, restore)

        self.sim.call_at(when, inject)

    def partition_at(
        self,
        when: float,
        a,
        b,
        duration_s: Optional[float] = None,
        stall_s: float = 30.0,
    ) -> None:
        """Sever the fabric between the racks of locations ``a`` and ``b``
        at ``when``; transfers crossing the cut stall by ``stall_s`` each
        until the partition heals after ``duration_s`` (None = never)."""
        if self.fabric is None:
            raise ValueError("partition_at requires an injector built with a fabric")

        def inject():
            self.fabric.sever(a, b, stall_s=stall_s)
            failure = Failure(
                domain=f"fabric:{a}~{b}", at=self.sim.now,
                permanent=duration_s is None, kind="partition",
            )
            self._notify(failure, None)
            if duration_s is not None:
                self.sim.call_at(
                    self.sim.now + duration_s,
                    lambda: self.fabric.heal_partition(a, b),
                )

        self.sim.call_at(when, inject)

    def exhaust_warm_pool_at(
        self, when: float, duration_s: Optional[float] = None
    ) -> None:
        """Empty the warm pool at ``when`` and suspend refills until
        ``duration_s`` later (None = for the rest of the run)."""
        if self.warm_pool is None:
            raise ValueError(
                "exhaust_warm_pool_at requires an injector built with a warm pool"
            )

        def inject():
            self.warm_pool.exhaust()
            failure = Failure(
                domain="warm-pool", at=self.sim.now,
                permanent=duration_s is None, kind="warm-exhaust",
            )
            self._notify(failure, None)
            if duration_s is not None:
                self.sim.call_at(
                    self.sim.now + duration_s, self.warm_pool.restore
                )

        self.sim.call_at(when, inject)

    # -- random schedules ---------------------------------------------------

    def random_failures(
        self,
        domain_names: List[str],
        horizon_s: float,
        mtbf_s: float,
        repair_after: Optional[float] = None,
    ) -> List[Tuple[float, str]]:
        """Poisson-ish failure schedule: each domain fails with exponential
        inter-arrival ``mtbf_s`` within ``horizon_s``.  Returns the
        ``(time, domain)`` schedule — byte-identical across runs with the
        same RNG seed, which the determinism tests assert."""
        schedule: List[Tuple[float, str]] = []
        for name in domain_names:
            t = self.rng.expovariate(1.0 / mtbf_s)
            while t < horizon_s:
                self.fail_at(t, name, repair_after=repair_after)
                schedule.append((t, name))
                t += self.rng.expovariate(1.0 / mtbf_s)
        return schedule
