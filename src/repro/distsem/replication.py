"""Replica placement with failure-domain anti-affinity.

The user's distributed aspect names a replication factor; the provider must
place that many replicas so that no single failure domain holds two of them
(otherwise the factor is security theater).  :class:`ReplicaPlacer` picks
storage/memory devices across racks, falling back gracefully (with an
explicit diagnostic) when the topology cannot honor full anti-affinity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hardware.devices import Device
from repro.hardware.pools import Allocation, AllocationError, ResourcePool

__all__ = ["PlacementResult", "ReplicaPlacer", "ReplicationPolicy"]


@dataclass(frozen=True)
class ReplicationPolicy:
    """User-declared replication for one data module."""

    factor: int = 1
    #: replicas must land on distinct racks when True
    anti_affinity: bool = True

    def __post_init__(self):
        if self.factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {self.factor}")

    @property
    def write_quorum(self) -> int:
        """Majority quorum used by quorum-mode protocols."""
        return self.factor // 2 + 1

    def strictest(self, other: "ReplicationPolicy") -> "ReplicationPolicy":
        return ReplicationPolicy(
            factor=max(self.factor, other.factor),
            anti_affinity=self.anti_affinity or other.anti_affinity,
        )


@dataclass
class PlacementResult:
    """Outcome of placing one module's replicas."""

    allocations: List[Allocation]
    #: True when rack anti-affinity could not be fully honored
    anti_affinity_degraded: bool = False

    @property
    def devices(self) -> List[Device]:
        return [a.device for a in self.allocations]

    @property
    def locations(self):
        return [a.device.location for a in self.allocations]


class ReplicaPlacer:
    """Places N replicas of ``size`` units on a pool, spreading racks."""

    def __init__(self, pool: ResourcePool):
        self.pool = pool

    def place(
        self,
        size: float,
        tenant: str,
        policy: ReplicationPolicy,
        preferred_location=None,
    ) -> PlacementResult:
        """Allocate ``policy.factor`` replicas.

        Placement strategy: the first replica prefers the caller's locality
        hint; subsequent replicas prefer *other* racks.  If distinct racks
        run out, placement continues on used racks and the result is marked
        degraded rather than failing — availability degraded beats data
        unplaced, and the runtime surfaces the degradation in the report.
        """
        allocations: List[Allocation] = []
        used_racks = set()
        degraded = False
        try:
            for index in range(policy.factor):
                allocation = self._place_one(
                    size, tenant, used_racks if policy.anti_affinity else set(),
                    preferred_location if index == 0 else None,
                )
                if allocation is None:
                    # Retry ignoring anti-affinity.
                    allocation = self._place_one(size, tenant, set(), None)
                    if allocation is None:
                        raise AllocationError(
                            f"cannot place replica {index + 1}/{policy.factor} "
                            f"of size {size:g} on pool {self.pool.device_type.value}"
                        )
                    degraded = True
                loc = allocation.device.location
                used_racks.add((loc.pod, loc.rack))
                allocations.append(allocation)
        except AllocationError:
            for allocation in allocations:
                self.pool.release(allocation)
            raise
        return PlacementResult(allocations=allocations, anti_affinity_degraded=degraded)

    def place_replacement(
        self, size: float, tenant: str, avoid_racks: set
    ) -> Allocation:
        """Place ONE replacement replica, preferring racks not in
        ``avoid_racks`` (the survivors' racks) — used by store healing."""
        allocation = self._place_one(size, tenant, avoid_racks, None)
        if allocation is None:
            allocation = self._place_one(size, tenant, set(), None)
        if allocation is None:
            raise AllocationError(
                f"pool {self.pool.device_type.value}: no capacity for a "
                f"replacement replica of {size:g}"
            )
        return allocation

    def _place_one(
        self, size: float, tenant: str, excluded_racks: set, preferred_location
    ) -> Optional[Allocation]:
        candidates: Sequence[Device] = [
            d
            for d in self.pool.devices
            if not d.failed
            and d.free + 1e-9 >= size
            and (d.location.pod, d.location.rack) not in excluded_racks
        ]
        if not candidates:
            return None

        def key(device: Device):
            local = 0 if (
                preferred_location is not None
                and device.location.same_rack(preferred_location)
            ) else 1
            return (local, device.free, device.seq)

        # min() equals sorted(...)[0] (seq makes the key unique; unlike
        # device_id strings, seq sorts numerically and is monotonic with
        # position, so the winner does not depend on how many datacenters
        # were built earlier in the process)
        # without the O(N log N) sort on every replica placement.
        chosen = min(candidates, key=key)
        return self.pool.allocate(size, tenant, device=chosen)
