"""Consistency levels and operation preferences (paper §3.4, Table 1).

Table 1 uses three distinct consistency/preference cells:

* S1 — *"Replicate 3x, Sequential consistency"*
* S2 — *"Replicate 2x, Reader preference"*
* S4 — *"No replication, Release consistency"*

The enum below covers those plus eventual consistency (the weakest point
in the lattice, used as the provider default for unreplicated caches) and
defines the *strictness order* used by conflict resolution: the paper says
conflicting specs on shared data resolve to the strictest or error out.
"""

from __future__ import annotations

import enum

__all__ = ["ConsistencyLevel", "OpPreference", "strictest"]


class ConsistencyLevel(enum.Enum):
    """Supported consistency contracts for data modules."""

    SEQUENTIAL = "sequential"
    RELEASE = "release"
    EVENTUAL = "eventual"

    @property
    def rank(self) -> int:
        """Strictness rank (higher = stricter) for strictest-wins merges."""
        return _RANK[self]

    def at_least(self, other: "ConsistencyLevel") -> bool:
        return self.rank >= other.rank


_RANK = {
    ConsistencyLevel.EVENTUAL: 0,
    ConsistencyLevel.RELEASE: 1,
    ConsistencyLevel.SEQUENTIAL: 2,
}


def strictest(a: ConsistencyLevel, b: ConsistencyLevel) -> ConsistencyLevel:
    return a if a.rank >= b.rank else b


class OpPreference(enum.Enum):
    """Which operation class the user optimizes for (§3.4: e.g. "read
    preference over write")."""

    NONE = "none"
    READER = "reader"
    WRITER = "writer"
