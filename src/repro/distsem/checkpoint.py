"""User-defined checkpoints (paper §3.4, Table 1's "Checkpoint" cells).

Table 1 marks A2, A3, A4, and B2 as *"Checkpoint"*: on failure these
modules recover from a user-defined checkpoint instead of re-executing
from scratch.  :class:`CheckpointStore` persists module state snapshots to
a storage device over the fabric and restores the most recent one;
benchmark E14 measures the checkpoint-overhead vs recovery-time trade.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.devices import Device
from repro.hardware.fabric import Fabric, Location
from repro.simulator.engine import Simulator

__all__ = ["Checkpoint", "CheckpointStore", "CheckpointStoreStats"]


@dataclass(frozen=True)
class Checkpoint:
    """One persisted snapshot of a module's execution state."""

    checkpoint_id: str
    module: str
    #: how much of the module's work was complete at snapshot time [0, 1]
    progress: float
    size_bytes: int
    taken_at: float
    payload: object = None


@dataclass
class CheckpointStoreStats:
    """Recovery-path accounting for one store."""

    checkpoints: int = 0
    restores: int = 0
    #: restore attempts that found the backing device failed and degraded
    #: to re-execution from scratch instead of raising
    restore_failures: int = 0


class CheckpointStore:
    """Snapshots for one tenant on one storage device."""

    def __init__(self, sim: Simulator, fabric: Fabric, device: Device):
        self.sim = sim
        self.fabric = fabric
        self.device = device
        self._by_module: Dict[str, List[Checkpoint]] = {}
        # Per-store, so checkpoint ids depend only on this run's order,
        # not on prior runs in the same process.
        self._ckpt_ids = itertools.count()
        self.bytes_written = 0
        self.checkpoint_seconds = 0.0
        self.stats = CheckpointStoreStats()

    @property
    def location(self) -> Location:
        return self.device.location

    def _media_time(self, size_bytes: int) -> float:
        spec = self.device.spec
        bw = spec.bandwidth_gbps * 1e9 / 8
        return spec.access_latency_s + (size_bytes / bw if bw > 0 else 0.0)

    def checkpoint(
        self,
        module: str,
        source: Location,
        progress: float,
        size_bytes: int,
        payload: object = None,
    ):
        """Generator: persist a snapshot; returns the :class:`Checkpoint`.

        Cost = fabric transfer from the module's location + media write.
        """
        if not 0.0 <= progress <= 1.0:
            raise ValueError(f"progress must be in [0, 1], got {progress}")
        start = self.sim.now
        yield self.fabric.send(source, self.location, size_bytes)
        yield self.sim.timeout(self._media_time(size_bytes))
        snapshot = Checkpoint(
            checkpoint_id=f"ckpt-{next(self._ckpt_ids)}",
            module=module,
            progress=progress,
            size_bytes=size_bytes,
            taken_at=self.sim.now,
            payload=payload,
        )
        self._by_module.setdefault(module, []).append(snapshot)
        self.bytes_written += size_bytes
        self.checkpoint_seconds += self.sim.now - start
        self.stats.checkpoints += 1
        return snapshot

    def latest(self, module: str) -> Optional[Checkpoint]:
        snapshots = self._by_module.get(module)
        return snapshots[-1] if snapshots else None

    def restore(self, module: str, destination: Location):
        """Generator: fetch the latest snapshot; returns it (or None).

        Cost = media read + fabric transfer to the recovering module.

        A failed backing device degrades gracefully: the restore answers
        None — the caller re-executes from scratch, exactly as if no
        snapshot existed — and the miss is counted in ``stats``.
        Raising here would turn a storage failure into a control-plane
        crash in the middle of recovering from a *compute* failure.
        """
        snapshot = self.latest(module)
        if snapshot is None:
            return None
        if self.device.failed:
            self.stats.restore_failures += 1
            return None
        yield self.sim.timeout(self._media_time(snapshot.size_bytes))
        yield self.fabric.send(self.location, destination, snapshot.size_bytes)
        self.stats.restores += 1
        return snapshot

    def count(self, module: str) -> int:
        return len(self._by_module.get(module, ()))
