"""In-network ordering vs software consensus (paper §3.4, benchmark E11).

The paper: disaggregated devices *"may not have computation power or could
run any software. Thus, traditional software systems that implement
distributed protocols would not directly work. A promising direction is to
explore the programmability in the network to enforce the distributed
specifications"* — citing NOPaxos and Pegasus.

Three ordering schemes for replicated writes are implemented as message
protocols on the fabric:

* **PRIMARY_BACKUP** — client → primary → backups → primary → client.
  Two sequential network stages; the primary is a software box.
* **CONSENSUS** — leader-based Multi-Paxos/Raft steady state:
  client → leader, leader → followers (accept), followers → leader
  (accepted, majority), leader → client.  Same hop structure as
  primary-backup but waits only for a majority; modeled with an explicit
  per-message software processing delay at every replica, which a
  switch does not pay.
* **SWITCH_SEQUENCER** — NOPaxos-style: client → switch (stamps a global
  sequence in the forwarding path) → all replicas, replicas → client.
  Replicas apply in stamp order; no replica-to-replica coordination on
  the fast path.

The benchmark reports per-write latency and message count; the shape that
must hold is: sequencer < primary-backup ≈ consensus in latency, and
sequencer uses no replica-to-replica messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.hardware.fabric import Fabric, Location, Message
from repro.simulator.engine import Simulator

__all__ = [
    "OrderingScheme",
    "ReplicationProtocolResult",
    "SwitchSequencer",
    "run_ordered_writes",
]

#: software request-processing delay at a replica CPU (per message); a
#: programmable switch forwards at line rate and pays none of this.
SOFTWARE_PROCESSING_S = 3e-6
WRITE_BYTES = 512
ACK_BYTES = 64


class OrderingScheme(enum.Enum):
    PRIMARY_BACKUP = "primary-backup"
    CONSENSUS = "consensus"
    SWITCH_SEQUENCER = "switch-sequencer"


class SwitchSequencer:
    """A programmable switch that stamps a monotonic global sequence onto
    messages routed through it (in the forwarding path, zero added delay
    beyond the extra hop)."""

    def __init__(self, fabric: Fabric, switch_location: Location):
        self.fabric = fabric
        self.switch_location = switch_location
        self.counter = 0
        fabric.attach_sequencer(switch_location, self._stamp)

    def _stamp(self, message: Message) -> None:
        message.sequence = self.counter
        self.counter += 1


@dataclass
class ReplicationProtocolResult:
    """Aggregate measurements for one scheme's run (E11's table row)."""

    scheme: OrderingScheme
    writes: int
    total_messages: int
    replica_to_replica_messages: int
    mean_latency_s: float
    latencies: List[float] = field(default_factory=list)


def _write_primary_backup(sim: Simulator, fabric: Fabric, client: Location,
                          replicas: List[Location], counters: dict):
    primary, backups = replicas[0], replicas[1:]
    start = sim.now
    yield fabric.send(client, primary, WRITE_BYTES)
    counters["messages"] += 1
    yield sim.timeout(SOFTWARE_PROCESSING_S)

    def to_backup(backup: Location):
        yield fabric.send(primary, backup, WRITE_BYTES)
        yield sim.timeout(SOFTWARE_PROCESSING_S)
        yield fabric.send(backup, primary, ACK_BYTES)

    acks = [sim.process(to_backup(b)) for b in backups]
    counters["messages"] += 2 * len(backups)
    counters["replica_msgs"] += 2 * len(backups)
    if acks:
        yield sim.all_of(acks)
    yield fabric.send(primary, client, ACK_BYTES)
    counters["messages"] += 1
    return sim.now - start


def _write_consensus(sim: Simulator, fabric: Fabric, client: Location,
                     replicas: List[Location], counters: dict):
    """Leader steady state: waits for a majority of accepts (incl. leader)."""
    leader, followers = replicas[0], replicas[1:]
    majority_acks = len(replicas) // 2  # leader itself counts as one vote
    start = sim.now
    yield fabric.send(client, leader, WRITE_BYTES)
    counters["messages"] += 1
    yield sim.timeout(SOFTWARE_PROCESSING_S)

    def accept(follower: Location):
        yield fabric.send(leader, follower, WRITE_BYTES)
        yield sim.timeout(SOFTWARE_PROCESSING_S)
        yield fabric.send(follower, leader, ACK_BYTES)

    acks = [sim.process(accept(f)) for f in followers]
    counters["messages"] += 2 * len(followers)
    counters["replica_msgs"] += 2 * len(followers)
    # Wait until a majority of accept-acks arrived (leader pre-voted).
    done = 0
    pending = list(acks)
    while done < majority_acks and pending:
        winner = yield sim.any_of(pending)
        pending = [p for p in pending if not p.processed]
        done += 1
    yield sim.timeout(SOFTWARE_PROCESSING_S)  # commit bookkeeping
    yield fabric.send(leader, client, ACK_BYTES)
    counters["messages"] += 1
    return sim.now - start


def _write_sequenced(sim: Simulator, fabric: Fabric, client: Location,
                     replicas: List[Location], sequencer: SwitchSequencer,
                     counters: dict):
    start = sim.now
    sends = [
        fabric.send(client, r, WRITE_BYTES, via=sequencer.switch_location)
        for r in replicas
    ]
    counters["messages"] += len(replicas)
    yield sim.all_of(sends)

    def reply(replica: Location):
        yield sim.timeout(SOFTWARE_PROCESSING_S)  # apply at the replica
        yield fabric.send(replica, client, ACK_BYTES)

    replies = [sim.process(reply(r)) for r in replicas]
    counters["messages"] += len(replicas)
    yield sim.all_of(replies)
    return sim.now - start


def run_ordered_writes(
    scheme: OrderingScheme,
    num_writes: int,
    num_replicas: int = 3,
    client_rack: int = 0,
) -> ReplicationProtocolResult:
    """Run ``num_writes`` sequential replicated writes under ``scheme`` on a
    fresh single-pod fabric with one replica per rack, and measure."""
    if num_replicas < 1:
        raise ValueError("need at least one replica")
    sim = Simulator()
    fabric = Fabric(sim)
    client = Location(pod=0, rack=client_rack, slot=99)
    replicas = [Location(pod=0, rack=i + 1, slot=0) for i in range(num_replicas)]
    switch = Location(pod=0, rack=-1, slot=0)
    sequencer = SwitchSequencer(fabric, switch)
    counters = {"messages": 0, "replica_msgs": 0}
    latencies: List[float] = []

    def driver():
        for _ in range(num_writes):
            if scheme == OrderingScheme.PRIMARY_BACKUP:
                latency = yield sim.process(
                    _write_primary_backup(sim, fabric, client, replicas, counters)
                )
            elif scheme == OrderingScheme.CONSENSUS:
                latency = yield sim.process(
                    _write_consensus(sim, fabric, client, replicas, counters)
                )
            else:
                latency = yield sim.process(
                    _write_sequenced(sim, fabric, client, replicas, sequencer,
                                     counters)
                )
            latencies.append(latency)

    done = sim.process(driver())
    sim.run(until_event=done)
    return ReplicationProtocolResult(
        scheme=scheme,
        writes=num_writes,
        total_messages=counters["messages"],
        replica_to_replica_messages=counters["replica_msgs"],
        mean_latency_s=sum(latencies) / len(latencies) if latencies else 0.0,
        latencies=latencies,
    )
