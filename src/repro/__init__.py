"""Reproduction of *User-Defined Cloud* (UDC), HotOS '21.

UDC lets cloud *users* define their own clouds: per-module hardware
resource demands, execution environments & security requirements, and
distributed semantics — declaratively, with the provider realizing them
over a fine-grained, disaggregated infrastructure.

Quick start::

    from repro import AppBuilder, UDCRuntime, build_datacenter

    app = AppBuilder("hello")

    @app.task(work=2.0)
    def crunch(ctx):
        return (ctx["input"] or 0) * 2

    runtime = UDCRuntime(build_datacenter())
    result = runtime.run(app.build(), {"crunch": {"resource": "fastest"}},
                         inputs={"crunch": 21})
    print(result.outputs["crunch"])   # 42
    print(result.format_table())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-figure/claim benchmark index.
"""

from repro.analysis import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Sensitivity,
    Severity,
    analyze_definition,
)
from repro.appmodel import AppBuilder, ModuleDAG, compile_dag, data, task
from repro.core import (
    AspectBuilder,
    AspectBundle,
    ConflictPolicy,
    DefinitionBuilder,
    DistributedAspect,
    DryRunProfiler,
    ExecEnvAspect,
    ResourceAspect,
    ResourceGoal,
    RunResult,
    UDCRuntime,
    UserDefinition,
    define,
    parse_definition,
    verify_run,
)
from repro.hardware import (
    Datacenter,
    DatacenterSpec,
    DeviceType,
    build_datacenter,
    default_catalog,
)
from repro.replay import (
    ReplayDivergence,
    ReplayRunner,
    RunConfig,
    SimulatedCrash,
    first_divergence,
    read_journal,
)
from repro.economics import PricingPlan
from repro.service import (
    BudgetExceeded,
    QuotaExceeded,
    ResultNotReady,
    SubmissionHandle,
    SubmitOptions,
    Tenant,
    TenantQuota,
    TenantSpec,
    UDCService,
    WeightedFairShare,
    submit_options,
    tenant_spec,
)
from repro.simulator import Simulator

__version__ = "1.6.0"

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "AppBuilder",
    "AspectBuilder",
    "AspectBundle",
    "BudgetExceeded",
    "ConflictPolicy",
    "Datacenter",
    "DatacenterSpec",
    "DefinitionBuilder",
    "DeviceType",
    "Diagnostic",
    "DistributedAspect",
    "DryRunProfiler",
    "ExecEnvAspect",
    "ModuleDAG",
    "PricingPlan",
    "QuotaExceeded",
    "ReplayDivergence",
    "ReplayRunner",
    "ResourceAspect",
    "ResourceGoal",
    "ResultNotReady",
    "RunConfig",
    "RunResult",
    "Sensitivity",
    "Severity",
    "SimulatedCrash",
    "Simulator",
    "SubmissionHandle",
    "SubmitOptions",
    "Tenant",
    "TenantQuota",
    "TenantSpec",
    "UDCRuntime",
    "UDCService",
    "UserDefinition",
    "WeightedFairShare",
    "analyze_definition",
    "build_datacenter",
    "compile_dag",
    "data",
    "default_catalog",
    "define",
    "first_divergence",
    "parse_definition",
    "read_journal",
    "submit_options",
    "task",
    "tenant_spec",
    "verify_run",
    "__version__",
]
