"""`GatewayClient`: an asyncio client for :class:`UDCGateway`.

Speaks the same :mod:`repro.gateway.wire` codec the server does, over a
bounded pool of keep-alive connections — thousands of concurrent
logical callers (the load generator's simulated tenants) multiplex over
a few dozen sockets, so a 10k-tenant run stays inside one process's
file-descriptor budget.

Errors travel as :class:`GatewayError` carrying the HTTP status and the
decoded body; 429 responses also surface the server's ``Retry-After``
hint as :attr:`GatewayError.retry_after_s` so closed-loop callers can
back off by exactly what the gateway measured.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.gateway.limiter import CapacityLimiter
from repro.gateway.wire import (
    HttpResponse,
    WebSocketConnection,
    WireError,
    read_response,
    write_request,
)

__all__ = ["GatewayClient", "GatewayError", "StreamSession"]


class GatewayError(Exception):
    """A non-2xx gateway response."""

    def __init__(self, status: int, payload: Any,
                 retry_after_s: Optional[float] = None):
        self.status = status
        self.payload = payload
        self.retry_after_s = retry_after_s
        detail = payload.get("error") if isinstance(payload, dict) else \
            payload
        super().__init__(f"gateway returned {status}: {detail}")


class GatewayClient:
    """Pooled keep-alive client; all methods are coroutine-safe."""

    def __init__(self, host: str, port: int, *, pool_size: int = 32):
        self.host = host
        self.port = port
        self._limiter = CapacityLimiter(pool_size)
        self._idle: List[Tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []
        self._closed = False

    # ----------------------------------------------------------- transport

    async def _open(self) -> Tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    async def _request(self, method: str, target: str,
                       body: Any = None) -> HttpResponse:
        if self._closed:
            raise RuntimeError("client is closed")
        async with self._limiter:
            conn = self._idle.pop() if self._idle else None
            fresh = conn is None
            if conn is None:
                conn = await self._open()
            reader, writer = conn
            try:
                write_request(writer, method, target, body)
                await writer.drain()
                response = await read_response(reader)
            except (WireError, ConnectionError, asyncio.IncompleteReadError):
                writer.close()
                if fresh:
                    raise
                # A pooled connection the server closed under us:
                # retry once on a fresh socket.
                reader, writer = await self._open()
                try:
                    write_request(writer, method, target, body)
                    await writer.drain()
                    response = await read_response(reader)
                except BaseException:
                    writer.close()
                    raise
            if response.headers.get("connection", "").lower() == "close" \
                    or self._closed:
                writer.close()
            else:
                self._idle.append((reader, writer))
        return response

    async def _json(self, method: str, target: str,
                    body: Any = None) -> Any:
        response = await self._request(method, target, body)
        try:
            payload = response.json()
        except ValueError:
            payload = response.body.decode("utf-8", "replace")
        if response.status >= 400:
            retry_after = response.headers.get("retry-after")
            raise GatewayError(
                response.status, payload,
                retry_after_s=float(retry_after) if retry_after else None,
            )
        return payload

    async def close(self) -> None:
        self._closed = True
        for _reader, writer in self._idle:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._idle.clear()

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ----------------------------------------------------------- endpoints

    async def health(self) -> Dict[str, Any]:
        return await self._json("GET", "/v1/healthz")

    async def metrics_text(self) -> str:
        response = await self._request("GET", "/v1/metrics")
        if response.status >= 400:
            raise GatewayError(response.status, response.json())
        return response.body.decode("utf-8")

    async def register_tenant(self, name: str, weight: float = 1.0,
                              max_in_flight: Optional[int] = None,
                              max_submissions: Optional[int] = None,
                              ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"name": name, "weight": weight}
        if max_in_flight is not None:
            body["max_in_flight"] = max_in_flight
        if max_submissions is not None:
            body["max_submissions"] = max_submissions
        return await self._json("POST", "/v1/tenants", body)

    async def submit(self, tenant: str, app: Dict[str, Any],
                     definition: Any = None,
                     inputs: Optional[Dict[str, Any]] = None,
                     ) -> Dict[str, Any]:
        """Submit one definition; returns the acceptance (or, for a
        cache hit, the finished result) payload.  ``app`` is the wire
        app spec: ``{"archetype": ..., "tag": ...}`` or ``{"ir": ...}``.
        """
        body: Dict[str, Any] = {"tenant": tenant, "app": app}
        if definition is not None:
            body["definition"] = definition
        if inputs is not None:
            body["inputs"] = inputs
        return await self._json("POST", "/v1/submissions", body)

    async def result(self, seq: int, *, wait: bool = False,
                     timeout_s: Optional[float] = None) -> Dict[str, Any]:
        target = f"/v1/submissions/{seq}"
        if wait:
            target += "?wait=1"
            if timeout_s is not None:
                target += f"&timeout_s={timeout_s}"
        return await self._json("GET", target)

    async def submit_and_wait(self, tenant: str, app: Dict[str, Any],
                              definition: Any = None,
                              inputs: Optional[Dict[str, Any]] = None,
                              timeout_s: Optional[float] = None,
                              ) -> Dict[str, Any]:
        accepted = await self.submit(tenant, app, definition, inputs)
        if accepted.get("done"):
            return accepted  # cache hit: served inline
        return await self.result(accepted["seq"], wait=True,
                                 timeout_s=timeout_s)

    async def shutdown_server(self) -> Dict[str, Any]:
        return await self._json("POST", "/v1/shutdown")

    async def stream(self) -> "StreamSession":
        """Open one WebSocket streaming session (its own connection,
        outside the pool — streams are long-lived)."""
        reader, writer = await self._open()
        write_request(writer, "GET", "/v1/stream", headers={
            "upgrade": "websocket",
            "connection": "Upgrade",
            "sec-websocket-key": "dWRjLWdhdGV3YXktc3RyZWFt",
            "sec-websocket-version": "13",
        })
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        if b"101" not in head.split(b"\r\n", 1)[0]:
            writer.close()
            raise GatewayError(500, {"error": "upgrade-refused",
                                     "head": head.decode("latin-1")})
        return StreamSession(WebSocketConnection(reader, writer,
                                                 mask_frames=True))


class StreamSession:
    """One upgraded streaming connection: watch submissions, read events."""

    def __init__(self, ws: WebSocketConnection):
        self._ws = ws

    async def watch(self, seq: int) -> None:
        await self._ws.send_json({"op": "watch", "seq": seq})

    async def ping(self) -> None:
        await self._ws.send_json({"op": "ping"})

    async def next_event(self) -> Optional[Dict[str, Any]]:
        """The next event, or None once the server closes the stream."""
        event = await self._ws.recv_json()
        if event is not None and not isinstance(event, dict):
            raise WireError(f"unexpected stream payload: {event!r}")
        return event

    async def events_until_result(self, seq: int,
                                  ) -> AsyncIterator[Dict[str, Any]]:
        """Yield events until (and including) ``seq``'s terminal result."""
        while True:
            event = await self.next_event()
            if event is None:
                return
            yield event
            if event.get("event") == "result" and event.get("seq") == seq:
                return

    async def close(self) -> None:
        await self._ws.close()
        self._ws.writer.close()
        with contextlib.suppress(Exception):
            await self._ws.writer.wait_closed()

    async def __aenter__(self) -> "StreamSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
