"""The network front door: an asyncio gateway over :class:`UDCService`.

The paper's user-defined cloud is a *service*: tenants hand the provider
a declarative definition over the network and watch fulfillment live
(§2).  This package puts a real protocol in front of the in-process
serving layer:

* **REST** — tenant registration, definition submission, result
  retrieval (long-poll), metrics, health, graceful shutdown.
* **WebSocket** — a streaming channel per connection: watch any of your
  submissions and receive ordered status / span / metric / result
  events as the control plane fulfills them.
* **Bounded worker pool** — request handling is gated by a
  :class:`~repro.gateway.limiter.CapacityLimiter`; the control plane is
  driven by timed ``dispatch_round``/``drain`` ticks from one engine
  task, so the discrete-event core stays single-threaded.
* **Overload control** — beyond a configurable live-submission
  watermark, the gateway sheds with ``429 Retry-After`` using the
  service's weighted fair-share policy: tenants over their fair share
  are shed first, tenants under it are still admitted.  Shed requests
  consume no quota and no control-plane work.

Everything is standard-library asyncio — no HTTP framework, no
websocket dependency — so the gateway runs wherever the simulator does.
"""

from repro.gateway.limiter import CapacityLimiter
from repro.gateway.server import GatewayConfig, UDCGateway
from repro.gateway.client import GatewayClient, GatewayError, StreamSession

__all__ = [
    "CapacityLimiter",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "StreamSession",
    "UDCGateway",
]
