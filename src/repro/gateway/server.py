"""`UDCGateway`: the asyncio front door over :class:`UDCService`.

One event loop, three moving parts:

* **Connection handlers** parse keep-alive HTTP/1.1 requests
  (:mod:`repro.gateway.wire`) and route them.  Handlers that touch the
  control plane borrow a token from a
  :class:`~repro.gateway.limiter.CapacityLimiter` — the bounded worker
  pool — so a burst queues at the front door instead of piling
  unbounded synchronous work onto the loop.  Service calls themselves
  are synchronous and atomic (no awaits inside), so the discrete-event
  core never sees interleaved mutation.
* **One engine task** (:meth:`UDCGateway._tick_loop`) advances the
  simulated clock in bounded ticks — ``service.drain(until=now +
  tick_sim_s)`` — finalizing completions as they happen.  A full
  ``drain()`` is reserved for shutdown: quiescent drains mark
  still-queued submissions unplaceable, which is a verdict a live
  server must not issue every tick.
* **Overload control**: past a live-submission watermark
  (``max_live``), admission is fair-share gated with the service's own
  weighted policy — a tenant already at or over its weighted share of
  the watermark is shed with ``429`` and a measured ``Retry-After``
  (an EWMA of the recent finalization rate), while tenants under their
  share are still admitted.  Shed requests consume no tenant quota and
  no control-plane work.

The streaming channel (``GET /v1/stream`` + WebSocket upgrade) carries
ordered per-submission events: ``status`` transitions as ticks observe
them, closed lifecycle ``span``s and a ``metric`` summary at
completion, then a terminal ``result``.  Each watch numbers its events
with a contiguous ``event_seq`` so clients can assert ordering.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.appmodel.annotations import AppBuilder
from repro.appmodel.dag import DagValidationError, ModuleDAG
from repro.appmodel.loader import load_program
from repro.core.spec import SpecError
from repro.gateway.limiter import CapacityLimiter
from repro.gateway.wire import (
    MAX_HEADER_BYTES,
    WebSocketConnection,
    WireError,
    read_request,
    websocket_accept_value,
    write_response,
)
from repro.service.service import SubmissionHandle, UDCService
from repro.service.tenants import QuotaExceeded, TenantQuota
from repro.workloads.cluster import ARCHETYPE_BUILDERS

__all__ = ["GatewayConfig", "UDCGateway"]


def _gateway_noop(ctx):
    """Task body for the gateway's built-in tiny archetype (module-level
    so DAGs stay picklable by reference, as in the cluster workload)."""
    return None


def _tiny_app(tag: str) -> Tuple[ModuleDAG, Dict]:
    """The smallest useful app: one cheap CPU task.  Load generators
    submit it to measure the serving path, not the placement search."""
    app = AppBuilder(f"tiny-{tag}")
    app.task(name="crunch", work=0.5)(_gateway_noop)
    return app.build(), {"crunch": {"resource": "cheapest"}}


#: archetype name -> builder(tag) -> (dag, default definition)
_APP_BUILDERS = {
    name: builder for name, (builder, _weight) in ARCHETYPE_BUILDERS.items()
}
_APP_BUILDERS["tiny"] = _tiny_app


@dataclass
class GatewayConfig:
    """Tunables for one gateway instance."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from :attr:`UDCGateway.port`)
    port: int = 0
    #: worker-pool size: concurrent requests allowed past the front door
    workers: int = 64
    #: live-submission watermark where fair-share load shedding engages
    max_live: int = 512
    #: simulated seconds the engine advances per tick
    tick_sim_s: float = 0.05
    #: real seconds the engine sleeps when there is no open work
    idle_sleep_s: float = 0.002
    #: LRU capacity for DAGs built from submission payloads
    dag_cache_capacity: int = 512
    #: default long-poll timeout for ``?wait=1`` result fetches
    wait_timeout_s: float = 30.0


class _HttpError(Exception):
    """A handler outcome that is an HTTP error, not a crash."""

    def __init__(self, status: int, body: Dict[str, Any],
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(body.get("error", str(status)))
        self.status = status
        self.body = body
        self.headers = headers


@dataclass
class _Watch:
    """One WebSocket subscription to one submission's lifecycle."""

    seq: int
    queue: "asyncio.Queue[Optional[Dict[str, Any]]]"
    last_status: str = ""
    #: contiguous per-watch event counter (clients assert ordering on it)
    event_seq: int = 0
    done: bool = field(default=False)


class UDCGateway:
    """Serve one :class:`UDCService` over HTTP/1.1 + WebSocket."""

    def __init__(self, service: UDCService,
                 config: Optional[GatewayConfig] = None):
        self.service = service
        self.config = config or GatewayConfig()
        self.limiter = CapacityLimiter(self.config.workers)
        self.telemetry = service.telemetry
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        #: seq -> handle, for result fetches and stream watches
        self._handles: Dict[int, SubmissionHandle] = {}
        #: seq -> futures resolved when the submission finalizes
        self._waiters: Dict[int, List[asyncio.Future]] = {}
        #: seq -> live stream watches
        self._watches: Dict[int, List[_Watch]] = {}
        #: payload fingerprint -> (dag, default definition)
        self._dag_cache: "OrderedDict[str, Tuple[ModuleDAG, Dict]]" = \
            OrderedDict()
        #: tenant weights mirrored for O(1) fair-share math at shed time
        self._weights: Dict[str, float] = {}
        self._weight_sum = 0.0
        #: EWMA of finalizations per real second (feeds Retry-After)
        self._finalize_rate = 0.0
        self._rate_mark: Optional[float] = None
        self._conn_writers: set = set()
        self._shed_total = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the engine; returns (host, port)."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._connection, self.config.host, self.config.port,
            limit=2 * MAX_HEADER_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._tick_task = asyncio.create_task(self._tick_loop())
        return self.host, self.port

    async def serve(self) -> None:
        """:meth:`start` then block until a graceful shutdown completes."""
        await self.start()
        await self.wait_closed()

    async def wait_closed(self) -> None:
        if self._stopped is not None:
            await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful shutdown: refuse new work, finish what is in flight.

        New submissions get 503 the moment draining starts; the listener
        closes; the engine finishes every open submission with one final
        quiescent drain (queued work that never fits is finalized as
        unplaceable rather than abandoned); waiters and stream watchers
        are notified; then connections close and :meth:`serve` returns.
        """
        if self._draining:
            await self.wait_closed()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._tick_task is not None:
            self._tick_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tick_task
        finished = self.service.drain()
        self._note_progress(finished)
        # A few loop turns so resolved waiters write their responses
        # and stream writers flush their terminal events.
        for _ in range(4):
            await asyncio.sleep(0)
        for seq, futures in list(self._waiters.items()):
            handle = self._handles.get(seq)
            for fut in futures:
                if not fut.done():
                    if handle is not None:
                        fut.set_result(handle)
                    else:
                        fut.cancel()
        self._waiters.clear()
        for watches in self._watches.values():
            for watch in watches:
                watch.queue.put_nowait(None)
        self._watches.clear()
        await asyncio.sleep(0)
        for writer in list(self._conn_writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        if self._stopped is not None:
            self._stopped.set()

    # --------------------------------------------------------------- engine

    async def _tick_loop(self) -> None:
        """Advance the control plane in bounded simulated-time ticks."""
        while True:
            if self.service.pending_count or self.service.open_count:
                start = time.monotonic()
                sim_now = self.service.runtime.sim.now
                finished = self.service.drain(
                    until=sim_now + self.config.tick_sim_s
                )
                self.telemetry.inc("udc_gateway_ticks_total")
                self.telemetry.observe("udc_gateway_tick_seconds",
                                       time.monotonic() - start)
                self._note_progress(finished)
                # Yield so handlers run between ticks even under load.
                await asyncio.sleep(0)
            else:
                await asyncio.sleep(self.config.idle_sleep_s)

    def _note_progress(self, finished: List[SubmissionHandle]) -> None:
        """Resolve waiters and stream watches after a drain tick."""
        now = time.monotonic()
        if finished:
            self.telemetry.inc("udc_gateway_finalized_total",
                               float(len(finished)))
            if self._rate_mark is not None:
                sample = len(finished) / max(now - self._rate_mark, 1e-6)
                self._finalize_rate = (
                    sample if self._finalize_rate == 0.0
                    else 0.7 * self._finalize_rate + 0.3 * sample
                )
            self._rate_mark = now
        elif self._rate_mark is None:
            self._rate_mark = now
        for handle in finished:
            for fut in self._waiters.pop(handle.seq, ()):
                if not fut.done():
                    fut.set_result(handle)
            for watch in self._watches.pop(handle.seq, ()):
                self._emit_final(watch, handle)
        # Status transitions for submissions still in flight.
        for seq, watches in self._watches.items():
            handle = self._handles.get(seq)
            if handle is None:
                continue
            for watch in watches:
                self._emit_status(watch, handle)

    def _retry_after(self) -> float:
        """Seconds a shed tenant should back off: roughly how long the
        service needs to finalize one watermark's worth of excess."""
        live = self.service.live_count
        excess = max(live - self.config.max_live, 0) + 1
        if self._finalize_rate <= 0.0:
            return 1.0
        return min(max(excess / self._finalize_rate, 0.05), 5.0)

    def _shed_check(self, tenant: str) -> None:
        """Raise 429 when over the watermark and over fair share.

        Below ``max_live`` everyone is admitted.  Above it, a tenant is
        admitted only while its live submissions sit under its weighted
        share of the watermark — so overload sheds the heavy hitters
        first and light tenants keep landing work (the same weights the
        admission policy schedules with).
        """
        if self.service.live_count < self.config.max_live:
            return
        weight = self._weights.get(tenant)
        if weight is None:
            policy = self.service.policy
            weight = (policy.weight_of(tenant)
                      if hasattr(policy, "weight_of") else 1.0)
            self._note_weight(tenant, weight)
        total = self._weight_sum or weight
        share = max(1, math.ceil(self.config.max_live * weight / total))
        if self.service.in_flight(tenant) < share:
            return
        retry_after = self._retry_after()
        self._shed_total += 1
        self.telemetry.inc("udc_gateway_shed_total")
        raise _HttpError(
            429,
            {"error": "shed", "detail": "over fair share at the live-"
             "submission watermark; retry after the hinted backoff",
             "retry_after_s": retry_after},
            {"retry-after": f"{retry_after:.3f}"},
        )

    def _note_weight(self, tenant: str, weight: float) -> None:
        old = self._weights.get(tenant)
        if old is not None:
            self._weight_sum -= old
        self._weights[tenant] = weight
        self._weight_sum += weight

    # ---------------------------------------------------------- connections

    async def _connection(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        self._conn_writers.add(writer)
        try:
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                if request.wants_websocket:
                    await self._websocket_session(request, reader, writer)
                    break
                await self._handle_http(request, writer)
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except WireError as exc:
            with contextlib.suppress(ConnectionError):
                write_response(writer, 400,
                               {"error": "bad-request", "detail": str(exc)},
                               keep_alive=False)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_http(self, request, writer) -> None:
        start = time.monotonic()
        try:
            status, body, headers, content_type = await self._route(request)
        except _HttpError as exc:
            status, body, headers = exc.status, exc.body, exc.headers
            content_type = "application/json"
        except WireError as exc:
            status = 400
            body = {"error": "bad-request", "detail": str(exc)}
            headers, content_type = None, "application/json"
        except Exception as exc:  # noqa: BLE001 - the server must answer
            status = 500
            body = {"error": "internal", "detail": f"{type(exc).__name__}: "
                    f"{exc}"}
            headers, content_type = None, "application/json"
        write_response(writer, status, body, content_type=content_type,
                       extra_headers=headers)
        self.telemetry.inc(
            "udc_gateway_requests_total",
            labels={"route": self._route_label(request), "code": str(status)},
        )
        self.telemetry.observe("udc_gateway_request_seconds",
                               time.monotonic() - start,
                               labels={"route": self._route_label(request)})

    @staticmethod
    def _route_label(request) -> str:
        """Bounded-cardinality route label (seqs collapse to a pattern)."""
        path = request.path
        if path.startswith("/v1/submissions/"):
            path = "/v1/submissions/{seq}"
        return f"{request.method} {path}"

    # --------------------------------------------------------------- routes

    async def _route(self, request):
        """Dispatch one request; returns (status, body, headers, ctype)."""
        method, path = request.method, request.path
        if path == "/v1/healthz" and method == "GET":
            return 200, self._health_payload(), None, "application/json"
        if path == "/v1/metrics" and method == "GET":
            async with self.limiter:
                text = self.metrics_text()
            return 200, text, None, "text/plain; version=0.0.4"
        if path == "/v1/tenants" and method == "POST":
            async with self.limiter:
                return self._register_tenant(request)
        if path == "/v1/submissions" and method == "POST":
            async with self.limiter:
                return self._submit(request)
        if path.startswith("/v1/submissions/") and method == "GET":
            return await self._get_submission(request)
        if path == "/v1/shutdown" and method == "POST":
            asyncio.get_running_loop().create_task(self.shutdown())
            return 202, {"status": "draining"}, None, "application/json"
        if path in ("/v1/healthz", "/v1/metrics", "/v1/tenants",
                    "/v1/submissions", "/v1/shutdown"):
            raise _HttpError(405, {"error": "method-not-allowed"})
        raise _HttpError(404, {"error": "not-found", "path": path})

    def _health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "live": self.service.live_count,
            "open": self.service.open_count,
            "pending": self.service.pending_count,
            "workers_busy": self.limiter.borrowed_tokens,
            "workers_waiting": self.limiter.waiting,
            "shed_total": self._shed_total,
            "cells": self.service.cells,
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition with gateway gauges refreshed."""
        registry = self.service.metrics_snapshot()
        self.telemetry.gauge_set("udc_gateway_workers_busy",
                                 float(self.limiter.borrowed_tokens))
        self.telemetry.gauge_set("udc_gateway_workers_total",
                                 float(self.limiter.total_tokens))
        self.telemetry.gauge_set("udc_gateway_live",
                                 float(self.service.live_count))
        self.telemetry.gauge_set(
            "udc_gateway_watches",
            float(sum(len(w) for w in self._watches.values())),
        )
        return registry.render_prometheus()

    def _register_tenant(self, request):
        if self._draining:
            raise _HttpError(503, {"error": "draining"})
        payload = request.json()
        if not isinstance(payload, dict) or "name" not in payload:
            raise _HttpError(400, {"error": "bad-request",
                                   "detail": "body must carry 'name'"})
        name = str(payload["name"])
        weight = float(payload.get("weight", 1.0))
        quota = None
        if "max_in_flight" in payload or "max_submissions" in payload:
            quota = TenantQuota(
                max_in_flight=payload.get("max_in_flight"),
                max_submissions=payload.get("max_submissions"),
            )
        tenant = self.service.register_tenant(name, weight=weight,
                                              quota=quota)
        self._note_weight(name, weight)
        return 200, {"name": tenant.name, "weight": tenant.weight}, None, \
            "application/json"

    def _submit(self, request):
        if self._draining:
            raise _HttpError(503, {"error": "draining"})
        payload = request.json()
        if not isinstance(payload, dict):
            raise _HttpError(400, {"error": "bad-request",
                                   "detail": "body must be a JSON object"})
        tenant = payload.get("tenant")
        if not tenant:
            raise _HttpError(400, {"error": "bad-request",
                                   "detail": "body must carry 'tenant'"})
        tenant = str(tenant)
        app, definition = self._build_app(payload)
        if "definition" in payload:
            definition = payload["definition"]
        self._shed_check(tenant)
        try:
            handle = self.service.submit(tenant, app, definition,
                                         inputs=payload.get("inputs"))
        except QuotaExceeded as exc:
            retry_after = self._retry_after()
            raise _HttpError(
                429, {"error": "quota-exceeded", "detail": str(exc),
                      "retry_after_s": retry_after},
                {"retry-after": f"{retry_after:.3f}"},
            ) from exc
        except (SpecError, DagValidationError) as exc:
            raise _HttpError(400, {"error": "invalid-definition",
                                   "detail": str(exc)}) from exc
        except Exception as exc:
            report = getattr(exc, "report", None)
            if report is None:  # not an AnalysisError: re-raise as 500
                raise
            raise _HttpError(
                422,
                {"error": "lint-rejected",
                 "diagnostics": [diag.to_dict() for diag in report]},
            ) from exc
        self._handles[handle.seq] = handle
        if handle.cached:
            return 200, self._result_payload(handle), None, \
                "application/json"
        body = {"seq": handle.seq, "status": handle.status,
                "cached": False, "cell": handle.cell}
        return 202, body, None, "application/json"

    async def _get_submission(self, request):
        try:
            seq = int(request.path.rsplit("/", 1)[1])
        except ValueError as exc:
            raise _HttpError(400, {"error": "bad-request",
                                   "detail": "seq must be an integer"}) \
                from exc
        async with self.limiter:
            handle = self._handles.get(seq)
            if handle is None:
                raise _HttpError(404, {"error": "unknown-seq", "seq": seq})
            if self._settled(handle):
                return 200, self._result_payload(handle), None, \
                    "application/json"
            wait = request.query.get("wait", "") in ("1", "true", "yes")
            if not wait:
                body = {"seq": seq, "status": handle.status, "done": False}
                return 200, body, None, "application/json"
            fut = asyncio.get_running_loop().create_future()
            self._waiters.setdefault(seq, []).append(fut)
        timeout = float(request.query.get("timeout_s",
                                          self.config.wait_timeout_s))
        # The long poll waits *outside* the worker pool: a parked
        # request must not hold a token other tenants need to make the
        # very progress it is waiting for.
        try:
            handle = await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            waiters = self._waiters.get(seq, [])
            if fut in waiters:
                waiters.remove(fut)
            handle = self._handles[seq]
            body = {"seq": seq, "status": handle.status, "done": False,
                    "timed_out": True}
            return 200, body, None, "application/json"
        except asyncio.CancelledError:
            raise _HttpError(503, {"error": "draining"}) from None
        return 200, self._result_payload(handle), None, "application/json"

    # ------------------------------------------------------------ app build

    def _build_app(self, payload: Dict[str, Any]) -> Tuple[ModuleDAG, Dict]:
        spec = payload.get("app")
        if not isinstance(spec, dict):
            raise _HttpError(400, {"error": "bad-request",
                                   "detail": "body must carry an 'app' "
                                   "object"})
        key = json.dumps(spec, sort_keys=True)
        cached = self._dag_cache.get(key)
        if cached is not None:
            self._dag_cache.move_to_end(key)
            return cached
        if "archetype" in spec:
            builder = _APP_BUILDERS.get(spec["archetype"])
            if builder is None:
                raise _HttpError(
                    400, {"error": "unknown-archetype",
                          "known": sorted(_APP_BUILDERS)})
            dag, definition = builder(str(spec.get("tag", "0")))
        elif "ir" in spec:
            try:
                dag = load_program(spec["ir"])
            except DagValidationError as exc:
                raise _HttpError(400, {"error": "invalid-ir",
                                       "detail": str(exc)}) from exc
            definition = {}
        else:
            raise _HttpError(400, {"error": "bad-request",
                                   "detail": "app needs 'archetype' or "
                                   "'ir'"})
        self._dag_cache[key] = (dag, definition)
        while len(self._dag_cache) > self.config.dag_cache_capacity:
            self._dag_cache.popitem(last=False)
        return dag, definition

    # -------------------------------------------------------------- results

    @staticmethod
    def _settled(handle: SubmissionHandle) -> bool:
        """Finalized (result collected) or terminal without one."""
        return (handle.cached or handle.result is not None
                or handle.status == "unplaceable")

    def _result_payload(self, handle: SubmissionHandle) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "seq": handle.seq,
            "tenant": handle.tenant,
            "app": handle.app,
            "status": handle.status,
            "done": True,
            "cached": handle.cached,
            "cell": handle.cell,
        }
        result = handle.result
        if result is not None and handle.status != "unplaceable":
            body["makespan_s"] = result.makespan_s
            body["total_cost"] = result.total_cost
            body["outputs"] = {
                name: value if _jsonable(value) else repr(value)
                for name, value in sorted(result.outputs.items())
            }
        return body

    # ------------------------------------------------------------ streaming

    async def _websocket_session(self, request, reader, writer) -> None:
        key = request.headers.get("sec-websocket-key")
        if request.path != "/v1/stream" or not key:
            write_response(writer, 400, {"error": "bad-upgrade"},
                           keep_alive=False)
            await writer.drain()
            return
        writer.write(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"upgrade: websocket\r\n"
            b"connection: Upgrade\r\n"
            b"sec-websocket-accept: "
            + websocket_accept_value(key).encode("latin-1")
            + b"\r\n\r\n"
        )
        await writer.drain()
        ws = WebSocketConnection(reader, writer, mask_frames=False)
        queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()
        pump = asyncio.create_task(self._ws_pump(ws, queue))
        mine: List[_Watch] = []
        try:
            while True:
                message = await ws.recv_json()
                if message is None or not isinstance(message, dict):
                    break
                op = message.get("op")
                if op == "watch":
                    self._start_watch(message, queue, mine)
                elif op == "ping":
                    queue.put_nowait({"event": "pong"})
                else:
                    queue.put_nowait({"event": "error",
                                      "error": "unknown-op", "op": op})
        except (WireError, json.JSONDecodeError):
            pass
        finally:
            for watch in mine:
                watches = self._watches.get(watch.seq)
                if watches and watch in watches:
                    watches.remove(watch)
                    if not watches:
                        del self._watches[watch.seq]
            queue.put_nowait(None)
            with contextlib.suppress(Exception):
                await asyncio.wait_for(pump, timeout=1.0)
            await ws.close()

    def _start_watch(self, message, queue, mine: List[_Watch]) -> None:
        try:
            seq = int(message["seq"])
        except (KeyError, TypeError, ValueError):
            queue.put_nowait({"event": "error", "error": "bad-watch"})
            return
        handle = self._handles.get(seq)
        if handle is None:
            queue.put_nowait({"event": "error", "error": "unknown-seq",
                              "seq": seq})
            return
        watch = _Watch(seq=seq, queue=queue)
        if self._settled(handle):
            self._emit_final(watch, handle)
            return
        self._emit_status(watch, handle)
        self._watches.setdefault(seq, []).append(watch)
        mine.append(watch)

    async def _ws_pump(self, ws: WebSocketConnection, queue) -> None:
        """Drain one connection's event queue onto the socket."""
        while True:
            item = await queue.get()
            if item is None:
                return
            try:
                await ws.send_json(item)
            except (ConnectionError, RuntimeError):
                return

    def _emit(self, watch: _Watch, payload: Dict[str, Any]) -> None:
        payload["event_seq"] = watch.event_seq
        watch.event_seq += 1
        watch.queue.put_nowait(payload)

    def _emit_status(self, watch: _Watch, handle: SubmissionHandle) -> None:
        status = handle.status
        if status != watch.last_status:
            watch.last_status = status
            self._emit(watch, {"event": "status", "seq": handle.seq,
                               "status": status})

    def _emit_final(self, watch: _Watch, handle: SubmissionHandle) -> None:
        """Terminal event series: status, spans, metric summary, result."""
        self._emit_status(watch, handle)
        for span in self._spans_of(handle):
            self._emit(watch, {"event": "span", "seq": handle.seq,
                               "span": span.to_dict()})
        result = handle.result
        if result is not None and handle.status != "unplaceable":
            self._emit(watch, {"event": "metric", "seq": handle.seq,
                               "makespan_s": result.makespan_s,
                               "total_cost": result.total_cost})
        self._emit(watch, {"event": "result", "seq": handle.seq,
                           "payload": self._result_payload(handle)})
        watch.done = True

    def _spans_of(self, handle: SubmissionHandle) -> List[Any]:
        """Closed lifecycle spans for the handle's tenant + app.

        A linear scan of the span log — acceptable because streams are
        a debugging/watching surface; fleet-scale runs serve with
        telemetry disabled, where the log is empty.
        """
        if handle.cached:
            return []
        return [
            span for span in self.telemetry.spans
            if span.phase == "lifecycle" and span.end_s is not None
            and span.attrs.get("tenant") == handle.tenant
            and span.attrs.get("app") == handle.app
        ]


def _jsonable(value: Any) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False
