"""A capacity limiter for asyncio, in the trio/anyio idiom.

Bounds how many tasks may hold a token at once — the gateway uses one
to cap concurrent request handling (the worker pool) without spawning
worker tasks: handlers *borrow* capacity around the service call and
give it back on the way out, so bursts queue at the front door instead
of piling unbounded work onto the control plane.

Differences from a bare :class:`asyncio.Semaphore`: the token count is
introspectable (``borrowed_tokens`` / ``available_tokens`` feed the
``udc_gateway_workers_*`` gauges), acquisition is FIFO-fair (waiters
are woken in arrival order; a semaphore makes no ordering promise), and
``total_tokens`` can be resized live.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict

__all__ = ["CapacityLimiter"]


class CapacityLimiter:
    """``async with limiter:`` gates entry to a bounded section."""

    def __init__(self, total_tokens: int):
        if total_tokens < 1:
            raise ValueError(
                f"total_tokens must be >= 1, got {total_tokens}"
            )
        self._total_tokens = total_tokens
        self._borrowed = 0
        #: arrival-ordered waiters; OrderedDict so a cancelled waiter
        #: can be removed in O(1) without disturbing the queue
        self._waiters: "OrderedDict[object, asyncio.Future]" = OrderedDict()

    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    @total_tokens.setter
    def total_tokens(self, value: int) -> None:
        if value < 1:
            raise ValueError(f"total_tokens must be >= 1, got {value}")
        self._total_tokens = value
        self._wake_waiters()

    @property
    def borrowed_tokens(self) -> int:
        return self._borrowed

    @property
    def available_tokens(self) -> int:
        return max(self._total_tokens - self._borrowed, 0)

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def _wake_waiters(self) -> None:
        while self._waiters and self._borrowed < self._total_tokens:
            _, fut = self._waiters.popitem(last=False)
            if not fut.done():
                self._borrowed += 1
                fut.set_result(None)

    async def acquire(self) -> None:
        if not self._waiters and self._borrowed < self._total_tokens:
            self._borrowed += 1
            return
        key = object()
        fut = asyncio.get_running_loop().create_future()
        self._waiters[key] = fut
        try:
            await fut
        except asyncio.CancelledError:
            if fut.done() and fut.exception() is None:
                # Granted and cancelled in the same tick: give it back.
                self._borrowed -= 1
                self._wake_waiters()
            self._waiters.pop(key, None)
            raise

    def release(self) -> None:
        if self._borrowed <= 0:
            raise RuntimeError("release() without a borrowed token")
        self._borrowed -= 1
        self._wake_waiters()

    async def __aenter__(self) -> "CapacityLimiter":
        await self.acquire()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return (
            f"CapacityLimiter(borrowed={self._borrowed}/"
            f"{self._total_tokens}, waiting={len(self._waiters)})"
        )
