"""Minimal HTTP/1.1 and RFC 6455 WebSocket codecs over asyncio streams.

The container ships no HTTP framework, so the gateway speaks the two
protocols it needs directly: keep-alive HTTP/1.1 with Content-Length
bodies (all the REST surface uses), and unfragmented WebSocket text
frames for the streaming channel.  Both sides of the wire live here —
the server parses requests and the client parses responses — so the
loopback tests and the load generator exercise the same codec the
gateway serves.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "WireError",
    "WebSocketConnection",
    "read_request",
    "read_response",
    "websocket_accept_value",
    "write_request",
    "write_response",
]

#: refuse unreasonable frames/bodies instead of buffering them
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content", 400: "Bad Request",
    403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class WireError(Exception):
    """Malformed traffic (oversized, truncated, or not HTTP)."""


@dataclass
class HttpRequest:
    method: str
    target: str
    headers: Dict[str, str]
    body: bytes = b""
    #: path with the query string stripped
    path: str = ""
    #: parsed query parameters (first value wins)
    query: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        parts = urlsplit(self.target)
        self.path = parts.path
        self.query = {
            key: values[0]
            for key, values in parse_qs(parts.query).items()
        }

    def json(self):
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise WireError(f"request body is not JSON: {exc}") from exc

    @property
    def wants_websocket(self) -> bool:
        return (
            self.headers.get("upgrade", "").lower() == "websocket"
            and "upgrade" in self.headers.get("connection", "").lower()
        )


@dataclass
class HttpResponse:
    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self):
        if not self.body:
            return None
        return json.loads(self.body)


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read up to the blank line; None on clean EOF before any bytes."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("connection closed mid-header") from exc
    except asyncio.LimitOverrunError as exc:
        raise WireError("header section exceeds the stream limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise WireError(f"header section over {MAX_HEADER_BYTES} bytes")
    return head


def _parse_headers(lines) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise WireError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(reader: asyncio.StreamReader,
                     headers: Dict[str, str]) -> bytes:
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        raise WireError(f"content-length {length} out of range")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-body") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request; None when the peer closed between requests."""
    head = await _read_head(reader)
    if head is None:
        return None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise WireError(f"malformed request line {lines[0]!r}") from exc
    headers = _parse_headers(line for line in lines[1:] if line)
    body = await _read_body(reader, headers)
    return HttpRequest(method=method.upper(), target=target,
                       headers=headers, body=body)


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    head = await _read_head(reader)
    if head is None:
        raise WireError("connection closed before a response arrived")
    lines = head.decode("latin-1").split("\r\n")
    try:
        _version, status, *_reason = lines[0].split(" ", 2)
        status_code = int(status)
    except ValueError as exc:
        raise WireError(f"malformed status line {lines[0]!r}") from exc
    headers = _parse_headers(line for line in lines[1:] if line)
    body = await _read_body(reader, headers)
    return HttpResponse(status=status_code, headers=headers, body=body)


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: object = None,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> None:
    """Serialize one response (dict/str/bytes body) onto the stream."""
    if body is None:
        payload = b""
    elif isinstance(body, bytes):
        payload = body
    elif isinstance(body, str):
        payload = body.encode("utf-8")
    else:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}",
            f"content-length: {len(payload)}"]
    if payload:
        head.append(f"content-type: {content_type}")
    head.append("connection: keep-alive" if keep_alive
                else "connection: close")
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                 + payload)


def write_request(
    writer: asyncio.StreamWriter,
    method: str,
    target: str,
    body: object = None,
    *,
    headers: Optional[Dict[str, str]] = None,
) -> None:
    """Serialize one client request (dict/str/bytes body) onto the stream."""
    if body is None:
        payload = b""
    elif isinstance(body, bytes):
        payload = body
    elif isinstance(body, str):
        payload = body.encode("utf-8")
    else:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
    head = [f"{method} {target} HTTP/1.1",
            "host: udc-gateway",
            f"content-length: {len(payload)}"]
    if payload:
        head.append("content-type: application/json")
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                 + payload)


# --------------------------------------------------------------- websocket


def websocket_accept_value(key: str) -> str:
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


class WebSocketConnection:
    """One upgraded connection: JSON text frames in both directions.

    ``mask_frames=True`` is the client role (RFC 6455 requires clients
    to mask); servers send unmasked.  Masking keys come from a counter,
    not ``os.urandom`` — the mask exists to defeat proxy cache
    poisoning, which loopback tests and benchmarks do not face, and a
    deterministic stream keeps runs reproducible.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *, mask_frames: bool):
        self.reader = reader
        self.writer = writer
        self.mask_frames = mask_frames
        self._mask_counter = 0
        self.closed = False

    async def send_json(self, payload: object) -> None:
        await self._send_frame(
            0x1, json.dumps(payload, sort_keys=True).encode("utf-8")
        )

    async def recv_json(self) -> Optional[object]:
        """Next JSON message; None once the peer closes."""
        while True:
            frame = await self._recv_frame()
            if frame is None:
                return None
            opcode, payload = frame
            if opcode == 0x1:  # text
                return json.loads(payload.decode("utf-8"))
            if opcode == 0x8:  # close: echo and report EOF
                await self.close()
                return None
            if opcode == 0x9:  # ping -> pong
                await self._send_frame(0xA, payload)
                continue
            # pong / binary: ignored

    async def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                await self._send_frame(0x8, b"")
            except (ConnectionError, RuntimeError):
                pass

    async def _send_frame(self, opcode: int, payload: bytes) -> None:
        header = bytearray([0x80 | opcode])
        mask_bit = 0x80 if self.mask_frames else 0
        length = len(payload)
        if length < 126:
            header.append(mask_bit | length)
        elif length < 1 << 16:
            header.append(mask_bit | 126)
            header += struct.pack(">H", length)
        else:
            header.append(mask_bit | 127)
            header += struct.pack(">Q", length)
        if self.mask_frames:
            self._mask_counter += 1
            mask = struct.pack(">I", self._mask_counter & 0xFFFFFFFF)
            header += mask
            payload = bytes(
                b ^ mask[i % 4] for i, b in enumerate(payload)
            )
        self.writer.write(bytes(header) + payload)
        await self.writer.drain()

    async def _recv_frame(self) -> Optional[Tuple[int, bytes]]:
        try:
            first = await self.reader.readexactly(2)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        opcode = first[0] & 0x0F
        masked = bool(first[1] & 0x80)
        length = first[1] & 0x7F
        try:
            if length == 126:
                (length,) = struct.unpack(
                    ">H", await self.reader.readexactly(2))
            elif length == 127:
                (length,) = struct.unpack(
                    ">Q", await self.reader.readexactly(8))
            if length > MAX_BODY_BYTES:
                raise WireError(f"websocket frame of {length} bytes")
            mask = (await self.reader.readexactly(4)) if masked else b""
            payload = await self.reader.readexactly(length) if length \
                else b""
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        if masked:
            payload = bytes(
                b ^ mask[i % 4] for i, b in enumerate(payload)
            )
        return opcode, payload
