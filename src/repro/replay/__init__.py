"""Deterministic checkpoint/replay for the UDC control plane.

The repo fought hard for byte-determinism (indexed placements proven
byte-identical, per-instance id counters, deterministic admission
ordering); this package cashes that in.  Three layers:

* :mod:`~repro.replay.journal` — an append-only, versioned JSONL log of
  every externally visible control-plane event (tenant registrations,
  submissions, failure injections, dispatch/drain rounds), each with a
  monotonic event id and a post-state fingerprint (clock, named-RNG
  stream states, service-state digest).
* :mod:`~repro.replay.snapshot` — versioned on-disk snapshots of the
  whole control plane (simulator clock + heap, hardware pools and their
  indexes, service quotas/strides/caches/ledgers), taken only at
  quiescent points between events — never inside one, so no live
  generator frame is ever serialized.
* :mod:`~repro.replay.runner` — :class:`ReplayRunner` drives a named
  deterministic workload, journaling every event, snapshotting on a
  cadence, optionally crashing at an arbitrary event index
  (:class:`SimulatedCrash`), and resuming from the latest snapshot plus
  a journal-tail replay — provably byte-identical to the uninterrupted
  run.  :mod:`~repro.replay.divergence` binary-searches two runs'
  journals to the first divergent event id (``udc bisect``).
"""

from repro.replay.divergence import (
    Divergence,
    bisect_replay,
    first_divergence,
)
from repro.replay.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalEvent,
    JournalWriter,
    read_journal,
)
from repro.replay.runner import (
    ReplayDivergence,
    ReplayRunner,
    RunConfig,
    SimulatedCrash,
)
from repro.replay.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    list_snapshots,
    load_snapshot,
    save_snapshot,
)
from repro.replay.workloads import REPLAY_WORKLOADS, build_script

__all__ = [
    "JOURNAL_VERSION",
    "REPLAY_WORKLOADS",
    "SNAPSHOT_VERSION",
    "Divergence",
    "JournalError",
    "JournalEvent",
    "JournalWriter",
    "ReplayDivergence",
    "ReplayRunner",
    "RunConfig",
    "SimulatedCrash",
    "SnapshotError",
    "bisect_replay",
    "build_script",
    "first_divergence",
    "list_snapshots",
    "load_snapshot",
    "read_journal",
    "save_snapshot",
]
