"""`ReplayRunner`: record, crash, resume, and replay deterministic runs.

A run is a pure function of its :class:`RunConfig`: the config derives a
command script (:func:`repro.replay.workloads.build_script`), and the
runner applies the script one command at a time against a freshly built
:class:`~repro.service.service.UDCService`, journaling each command as
an event with a *post-state fingerprint* (simulator clock, RNG-stream
digest, service-state digest).

Four entry points:

* :meth:`ReplayRunner.record` — execute the script start to finish,
  journaling every event, snapshotting on a cadence, and optionally
  raising :class:`SimulatedCrash` *after* journaling event ``crash_at``
  (the crash injector: the process dies with the journal durable up to
  and including that event).
* :meth:`ReplayRunner.resume` — restart after a crash: load the newest
  loadable snapshot at or before the journal tail, re-execute the
  journaled suffix while verifying each recorded fingerprint (raising
  :class:`ReplayDivergence` on mismatch), then run the remaining script
  to completion.  The final report is byte-identical to an
  uninterrupted run — that is the contract the tier-1 suite asserts.
* :meth:`ReplayRunner.replay` — re-execute a journaled prefix from
  scratch (``udc replay``), verifying fingerprints as it goes.
* :meth:`ReplayRunner.fingerprint_at` — the post-state fingerprint after
  event ``eid`` on a fresh re-execution; the probe ``udc bisect`` uses.

The ``perturb`` hook deliberately injects a divergence (one extra draw
from a named RNG stream after a chosen event) without touching the
config — it exists so bisection has something real to find in tests.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import AnalysisError
from repro.core.runtime import UDCRuntime
from repro.core.telemetry import Telemetry
from repro.execenv.warmpool import WarmPool
from repro.hardware.topology import DatacenterSpec, build_datacenter
from repro.replay.journal import JournalError, JournalEvent, JournalWriter, read_journal
from repro.replay.snapshot import (
    SnapshotError,
    list_snapshots,
    load_snapshot,
    save_snapshot,
    snapshot_path,
)
from repro.replay.workloads import Command, RunScript, build_script
from repro.service import FifoAdmission, UDCService, WeightedFairShare
from repro.service.tenants import BudgetExceeded, QuotaExceeded, TenantSpec
from repro.simulator.rng import RngRegistry

__all__ = [
    "ReplayDivergence",
    "ReplayRunner",
    "RunConfig",
    "SimulatedCrash",
]


class SimulatedCrash(RuntimeError):
    """The crash injector: control-plane death at a chosen event index.

    Raised *after* the event's journal line is durable — exactly the
    state a real crash leaves behind (journal intact through the event,
    process gone, in-memory state lost).
    """

    def __init__(self, eid: int):
        super().__init__(f"simulated control-plane crash after event {eid}")
        self.eid = eid


class ReplayDivergence(Exception):
    """Replay produced a different fingerprint than the journal recorded."""


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to reproduce a run, byte for byte.

    Serialized into the journal header, so a journal is self-contained:
    any reader can rebuild the command script and re-execute any prefix.
    ``params`` must be JSON round-trippable.
    """

    workload: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    pods: int = 1
    racks: int = 4
    policy: str = "fair"  # "fair" | "fifo"
    batched: bool = True
    lint: bool = True
    telemetry: bool = True
    warm: bool = False
    #: placement cells (1 = the unsharded control plane); journals
    #: recorded before sharding existed deserialize to 1
    cells: int = 1
    #: economic autopilot (adaptive budgets + forecast warm pools);
    #: journals recorded before the autopilot deserialize to False
    autopilot: bool = False

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "params": self.params,
            "seed": self.seed,
            "pods": self.pods,
            "racks": self.racks,
            "policy": self.policy,
            "batched": self.batched,
            "lint": self.lint,
            "telemetry": self.telemetry,
            "warm": self.warm,
            "cells": self.cells,
            "autopilot": self.autopilot,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RunConfig":
        try:
            return cls(
                workload=str(payload["workload"]),
                params=dict(payload.get("params", {})),
                seed=int(payload.get("seed", 0)),
                pods=int(payload.get("pods", 1)),
                racks=int(payload.get("racks", 4)),
                policy=str(payload.get("policy", "fair")),
                batched=bool(payload.get("batched", True)),
                lint=bool(payload.get("lint", True)),
                telemetry=bool(payload.get("telemetry", True)),
                warm=bool(payload.get("warm", False)),
                cells=int(payload.get("cells", 1)),
                autopilot=bool(payload.get("autopilot", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed run config: {exc}") from exc


def _canonical_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class ReplayRunner:
    """Drives one :class:`RunConfig` through record / resume / replay."""

    def __init__(self, config: RunConfig,
                 perturb: Optional[Dict[str, Any]] = None):
        self.config = config
        #: deliberate divergence injector for bisect tests:
        #: ``{"eid": N, "stream": name}`` draws once from the named RNG
        #: stream right after event N is applied.  Never serialized.
        self.perturb = perturb
        self.script: RunScript = build_script(
            config.workload, config.params, config.seed
        )

    # ----------------------------------------------------------- plumbing

    def _fresh_service(self) -> UDCService:
        config = self.config
        datacenter = build_datacenter(
            DatacenterSpec(pods=config.pods, racks_per_pod=config.racks)
        )
        policy = (WeightedFairShare() if config.policy == "fair"
                  else FifoAdmission())
        if config.cells > 1:
            # Sharded control plane: the service partitions the
            # datacenter itself; telemetry/rng/warm-pool are shared
            # across cell runtimes, so the fingerprints below still
            # cover the whole run.
            return UDCService(
                datacenter, policy=policy, batched=config.batched,
                lint=config.lint, cells=config.cells,
                autopilot=config.autopilot,
                rng=RngRegistry(config.seed),
                warm_pool=WarmPool(enabled=config.warm),
                prewarm=config.warm,
                telemetry=Telemetry(enabled=config.telemetry),
            )
        runtime = UDCRuntime(
            datacenter,
            rng=RngRegistry(config.seed),
            warm_pool=WarmPool(enabled=config.warm),
            prewarm=config.warm,
            telemetry=Telemetry(enabled=config.telemetry),
        )
        return UDCService(runtime=runtime, policy=policy,
                          batched=config.batched, lint=config.lint,
                          autopilot=config.autopilot)

    def _apply(self, service: UDCService, command: Command,
               eid: int) -> Dict[str, Any]:
        """Execute one command; returns its observable-outcome ``info``."""
        op, args = command.op, command.args
        if op == "register-tenant":
            # Journaled spec fields are optional: commands recorded
            # before TenantSpec existed carry only tenant + weight and
            # resolve to the identical registration.
            spec = TenantSpec(
                weight=float(args.get("weight", 1.0)),
                tier=str(args.get("tier", "firm")),
                goal=(str(args["goal"])
                      if args.get("goal") is not None else None),
                budget_dollars=(float(args["budget_dollars"])
                                if args.get("budget_dollars") is not None
                                else None),
                slo_s=(float(args["slo_s"])
                       if args.get("slo_s") is not None else None),
            )
            service.register_tenant(args["tenant"], spec)
            info: Dict[str, Any] = {}
        elif op == "inject-failure":
            # Routed through the service: sharded runs own one injector
            # per cell, and the domain lives where its module landed.
            service.fail_at(float(args["at"]), str(args["domain"]))
            info = {}
        elif op == "submit":
            app_key = args["app"]
            try:
                handle = service.submit(
                    args["tenant"],
                    self.script.apps[app_key],
                    self.script.definitions.get(app_key),
                    inputs=args.get("inputs"),
                )
                info = {"outcome": handle.status, "seq": handle.seq}
            except BudgetExceeded:
                # Before QuotaExceeded: budget exhaustion subclasses it.
                info = {"outcome": "budget-rejected"}
            except QuotaExceeded:
                info = {"outcome": "quota-rejected"}
            except AnalysisError:
                info = {"outcome": "lint-rejected"}
        elif op == "drain":
            finished = service.drain()
            info = {"finalized": len(finished),
                    "clock": repr(service.runtime.sim.now)}
        else:
            raise JournalError(f"unknown journaled op {op!r}")
        if self.perturb is not None and eid == int(self.perturb["eid"]):
            # One extra draw: every subsequent rng fingerprint diverges.
            service.runtime.rng.stream(str(self.perturb["stream"])).random()
        return info

    def _fingerprint(self, service: UDCService) -> Dict[str, str]:
        """Post-state fingerprint: clock, RNG streams, service state."""
        state = {
            "handles": [
                {"tenant": h.tenant, "app": h.app, "seq": h.seq,
                 "status": h.status, "cached": h.cached,
                 "cost": (repr(h.result.total_cost)
                          if h.result is not None else None)}
                for h in service.handles
            ],
            "rollup": [
                {"tenant": u.tenant, "submissions": u.submissions,
                 "completed": u.completed, "unplaceable": u.unplaceable,
                 "rejected": u.rejected, "cache_hits": u.cache_hits,
                 "total_cost": repr(u.total_cost),
                 "cost_saved": repr(u.cost_saved)}
                for u in service.rollup()
            ],
            "cache": {"hits": service.cache_stats.hits,
                      "misses": service.cache_stats.misses,
                      "evictions": service.cache_stats.evictions},
            "rounds": service.rounds,
        }
        # Autopilot state (budgets, ceilings, forecaster EWMAs,
        # preemptions) fingerprints like an RNG stream — but only when
        # economics are active, so pre-autopilot journals verify
        # byte-identically.
        economics = service.economics_fingerprint()
        if economics is not None:
            state["economics"] = economics
        return {
            "clock": repr(service.runtime.sim.now),
            "rng": service.runtime.rng.state_fingerprint(),
            "state": hashlib.sha256(_canonical_bytes(state)).hexdigest(),
        }

    # ------------------------------------------------------------ reports

    def final_report(self, service: UDCService) -> Dict[str, Any]:
        """The run's externally visible outcome, canonically ordered.

        Floats are ``repr``'d so the JSON encoding is exact (no
        formatting-dependent rounding) — byte-identity of two reports
        means bit-identity of every cost and clock value in them.
        """
        metrics = service.runtime.metrics_snapshot().to_dict()
        return {
            "config": self.config.to_json_dict(),
            "clock": repr(service.runtime.sim.now),
            "rounds": service.rounds,
            "fairness_completed": repr(service.fairness_index()),
            "handles": [
                {"tenant": h.tenant, "app": h.app, "seq": h.seq,
                 "status": h.status, "cached": h.cached,
                 "cost": (repr(h.result.total_cost)
                          if h.result is not None else None),
                 "outputs": (json.loads(_canonical_bytes(
                     h.outputs_or_none()))
                     if h.outputs_or_none() is not None else None)}
                for h in service.handles
            ],
            "rollup": [
                {"tenant": u.tenant, "submissions": u.submissions,
                 "completed": u.completed, "unplaceable": u.unplaceable,
                 "rejected": u.rejected, "cache_hits": u.cache_hits,
                 "total_cost": repr(u.total_cost),
                 "cost_saved": repr(u.cost_saved),
                 "billed_cost": repr(u.billed_cost),
                 "slo_misses": u.slo_misses,
                 "queue_wait_s": repr(u.queue_wait_s)}
                for u in service.rollup()
            ],
            "cache": {"hits": service.cache_stats.hits,
                      "misses": service.cache_stats.misses,
                      "evictions": service.cache_stats.evictions},
            "economics": service.economics_fingerprint(),
            "metrics": metrics,
        }

    def report_bytes(self, service: UDCService) -> bytes:
        """Canonical encoding of :meth:`final_report` for byte-diffing."""
        return _canonical_bytes(self.final_report(service)) + b"\n"

    # ------------------------------------------------------------- record

    def record(
        self,
        journal_path: str,
        snapshot_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        crash_at: Optional[int] = None,
    ) -> UDCService:
        """Execute the full script, journaling every event.

        ``snapshot_every=N`` snapshots after every Nth event that lands
        at a quiescent point; ``crash_at=K`` raises
        :class:`SimulatedCrash` immediately after event K's journal line
        is durable — mid-run, in-memory state lost, exactly what
        :meth:`resume` must recover from.
        """
        service = self._fresh_service()
        with JournalWriter(journal_path,
                           self.config.to_json_dict()) as journal:
            for eid, command in enumerate(self.script.commands):
                info = self._apply(service, command, eid)
                journal.append(JournalEvent(
                    eid=eid, op=command.op, args=command.args,
                    info=info, fingerprint=self._fingerprint(service),
                ))
                self._maybe_snapshot(service, eid, snapshot_dir,
                                     snapshot_every)
                if crash_at is not None and eid == crash_at:
                    raise SimulatedCrash(eid)
        return service

    def _maybe_snapshot(self, service: UDCService, eid: int,
                        snapshot_dir: Optional[str],
                        snapshot_every: Optional[int]) -> None:
        if snapshot_dir is None or not snapshot_every:
            return
        if (eid + 1) % snapshot_every != 0:
            return
        if not service.runtime.sim.is_quiescent:
            return  # mid-round: the next cadence hit will catch a drain
        os.makedirs(snapshot_dir, exist_ok=True)
        save_snapshot(snapshot_path(snapshot_dir, eid), service, eid)

    # ------------------------------------------------------------- resume

    def resume(
        self,
        journal_path: str,
        snapshot_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
    ) -> UDCService:
        """Restart after a crash and run the script to completion.

        Picks the newest *loadable* snapshot with ``eid <=`` the journal
        tail (corrupt or truncated snapshots are skipped, falling back
        to older ones or to scratch), re-executes the journaled suffix
        verifying each recorded fingerprint, then continues the
        remaining script appending new events to the same journal.
        """
        config_dict, events, _torn = read_journal(journal_path)
        recorded = RunConfig.from_json_dict(config_dict)
        if recorded != self.config:
            raise JournalError(
                f"journal {journal_path} was recorded under a different "
                f"config than this runner"
            )
        last_eid = events[-1].eid if events else -1
        service, start_eid = self._latest_restorable(snapshot_dir, last_eid)
        if service is None:
            service = self._fresh_service()
            start_eid = -1
        with JournalWriter(journal_path, self.config.to_json_dict(),
                           resume=True) as journal:
            for eid in range(start_eid + 1, len(self.script.commands)):
                command = self.script.commands[eid]
                info = self._apply(service, command, eid)
                fingerprint = self._fingerprint(service)
                if eid <= last_eid:
                    recorded_event = events[eid]
                    self._check_event(recorded_event, command, fingerprint)
                else:
                    journal.append(JournalEvent(
                        eid=eid, op=command.op, args=command.args,
                        info=info, fingerprint=fingerprint,
                    ))
                self._maybe_snapshot(service, eid, snapshot_dir,
                                     snapshot_every)
        return service

    def _latest_restorable(
        self, snapshot_dir: Optional[str], last_eid: int,
    ) -> Tuple[Optional[UDCService], int]:
        """Newest loadable snapshot at or before the journal tail."""
        if snapshot_dir is None:
            return None, -1
        for eid, path in reversed(list_snapshots(snapshot_dir)):
            if eid > last_eid:
                continue  # snapshot of events the journal never saw
            try:
                snap_eid, service = load_snapshot(path)
            except SnapshotError:
                continue  # corrupt/torn: fall back to an older one
            return service, snap_eid
        return None, -1

    def _check_event(self, recorded: JournalEvent, command: Command,
                     fingerprint: Dict[str, str]) -> None:
        if recorded.op != command.op or recorded.args != command.args:
            raise ReplayDivergence(
                f"event {recorded.eid}: journal records "
                f"{recorded.op!r}{recorded.args!r} but the config-derived "
                f"script says {command.op!r}{command.args!r}"
            )
        if recorded.fingerprint != fingerprint:
            fields = sorted(
                k for k in set(recorded.fingerprint) | set(fingerprint)
                if recorded.fingerprint.get(k) != fingerprint.get(k)
            )
            raise ReplayDivergence(
                f"event {recorded.eid} ({recorded.op}): replayed "
                f"fingerprint diverges from the journal in {fields} "
                f"(journal {recorded.fingerprint!r}, replay {fingerprint!r})"
            )

    # ------------------------------------------------------------- replay

    def replay(
        self,
        journal_path: str,
        until: Optional[int] = None,
        verify: bool = True,
    ) -> Tuple[UDCService, List[JournalEvent]]:
        """Re-execute a journaled prefix from scratch.

        Runs the config-derived script through event ``until`` (default:
        the journal tail), verifying each recorded fingerprint when
        ``verify``.  Returns the reconstructed service and the journaled
        events actually replayed.
        """
        config_dict, events, _torn = read_journal(journal_path)
        recorded = RunConfig.from_json_dict(config_dict)
        if recorded != self.config:
            raise JournalError(
                f"journal {journal_path} was recorded under a different "
                f"config than this runner"
            )
        last = events[-1].eid if events else -1
        stop = last if until is None else min(until, last)
        service = self._fresh_service()
        replayed: List[JournalEvent] = []
        for eid in range(0, stop + 1):
            command = self.script.commands[eid]
            self._apply(service, command, eid)
            fingerprint = self._fingerprint(service)
            if verify:
                self._check_event(events[eid], command, fingerprint)
            replayed.append(events[eid])
        return service, replayed

    def fingerprint_at(self, eid: int) -> Dict[str, str]:
        """Post-state fingerprint after event ``eid``, fresh execution.

        The probe :func:`repro.replay.divergence.bisect_replay` calls
        O(log n) times to localize a divergence against a journal.
        """
        if not 0 <= eid < len(self.script.commands):
            raise ValueError(
                f"event id {eid} outside this script "
                f"(0..{len(self.script.commands) - 1})"
            )
        service = self._fresh_service()
        for index in range(eid + 1):
            self._apply(service, self.script.commands[index], index)
        return self._fingerprint(service)
