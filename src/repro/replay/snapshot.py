"""Versioned on-disk snapshots of a quiescent control plane.

A snapshot serializes the *entire* live object graph of a
:class:`~repro.service.service.UDCService` — the simulator (clock, event
sequence counter, empty heap), hardware pools with their free-capacity
indexes and utilization integrals, the scheduler, warm pool, breakers,
failure-domain registry, RNG streams, telemetry/metrics registries, and
the service's quotas, admission strides, caches, and ledgers.

**Snapshot boundary.**  Snapshots are taken only *between* events at
quiescent points (:attr:`~repro.simulator.engine.Simulator.is_quiescent`:
nothing pending on the event heap).  At quiescence every process
generator has run to completion, so the only generator objects reachable
from the graph are exhausted ones; the custom pickler maps those to an
inert stub and hard-fails on any *live* generator frame — the invariant
is enforced, not assumed.  Python cannot serialize a suspended generator
frame, which is exactly why the boundary exists.

**File format** (version 1)::

    {"format": "udc-snapshot", "version": 1, "eid": 41,
     "payload_bytes": 123456, "sha256": "..."}\\n
    <pickle payload>

The header is one JSON line; the payload is a pickle of the service.
Writes go to a temp file then ``os.replace`` (atomic on POSIX), and the
digest catches truncation/corruption on load — a half-written snapshot
from a crash is *detected and skipped*, never silently restored; callers
(:meth:`~repro.replay.runner.ReplayRunner.resume`) degrade to an older
snapshot or to re-execution from scratch.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import types
from typing import Any, List, Tuple

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "list_snapshots",
    "load_snapshot",
    "save_snapshot",
    "snapshot_path",
]

SNAPSHOT_VERSION = 1
_FORMAT = "udc-snapshot"


class SnapshotError(Exception):
    """Raised for snapshot-boundary violations and unusable snapshots."""


def _drained_stub():
    """Replaces exhausted generators on restore.  Never advanced: every
    holder (a finished Process) is already triggered and will not resume
    it; this exists only so the attribute slot is filled."""
    return
    yield  # pragma: no cover  (makes this a generator function)


def _make_drained_stub():
    """Reconstructor: build the stub *already exhausted*, so a restored
    service can itself be re-snapshotted (its stubs must look like the
    exhausted generators they replace — ``gi_frame is None``)."""
    gen = _drained_stub()
    for _ in gen:  # pragma: no cover - the stub yields nothing
        pass
    return gen


class _SnapshotPickler(pickle.Pickler):
    """Pickler enforcing the quiescent-snapshot boundary.

    Exhausted generators (``gi_frame is None``) reduce to an inert stub;
    a *live* generator frame means someone is snapshotting mid-event and
    is a hard error naming the offending frame.
    """

    def reducer_override(self, obj: Any):
        if isinstance(obj, types.GeneratorType):
            if obj.gi_frame is None:
                return (_make_drained_stub, ())
            raise SnapshotError(
                f"live generator frame {obj.__qualname__!r} reached the "
                f"snapshot: snapshots must be taken at quiescent points "
                f"between events (Simulator.is_quiescent), never inside one"
            )
        if isinstance(obj, (types.CoroutineType, types.AsyncGeneratorType)):
            raise SnapshotError(
                f"coroutine object {obj!r} is not snapshotable"
            )
        return NotImplemented


def snapshot_path(directory: str, eid: int) -> str:
    """Canonical snapshot filename for event id ``eid``."""
    return os.path.join(str(directory), f"snap-{eid:08d}.udcsnap")


def save_snapshot(path: str, service: Any, eid: int) -> str:
    """Serialize ``service`` (post-event ``eid``) to ``path`` atomically."""
    sim = service.runtime.sim
    if not sim.is_quiescent:
        raise SnapshotError(
            f"snapshot at event {eid} refused: the simulator has pending "
            f"events (snapshots are only taken at quiescent points)"
        )
    buffer = io.BytesIO()
    _SnapshotPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(service)
    payload = buffer.getvalue()
    header = json.dumps({
        "format": _FORMAT,
        "version": SNAPSHOT_VERSION,
        "eid": eid,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }, sort_keys=True, separators=(",", ":"))
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(header.encode("utf-8") + b"\n")
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return str(path)


def load_snapshot(path: str) -> Tuple[int, Any]:
    """Load a snapshot; returns ``(eid, service)``.

    Raises :class:`SnapshotError` on version mismatch, truncation, or
    digest mismatch — a crashed writer's partial file is never restored.
    """
    try:
        with open(path, "rb") as fh:
            header_line = fh.readline()
            payload = fh.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot {path} has a corrupt header") from exc
    if header.get("format") != _FORMAT:
        raise SnapshotError(f"{path} is not a UDC snapshot")
    if header.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path} is version {header.get('version')!r}; this "
            f"loader supports {SNAPSHOT_VERSION}"
        )
    if len(payload) != header.get("payload_bytes"):
        raise SnapshotError(
            f"snapshot {path} is truncated "
            f"({len(payload)} of {header.get('payload_bytes')} bytes)"
        )
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        raise SnapshotError(f"snapshot {path} fails its digest check")
    try:
        service = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickle failure is fatal
        raise SnapshotError(
            f"snapshot {path} cannot be deserialized: {exc!r}"
        ) from exc
    return int(header["eid"]), service


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(eid, path)`` for every snapshot file present, ascending by eid.

    Files are listed, not validated — :func:`load_snapshot` decides
    usability, so resume can fall back across corrupt snapshots.
    """
    if not os.path.isdir(directory):
        return []
    found: List[Tuple[int, str]] = []
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("snap-") and name.endswith(".udcsnap")):
            continue
        stem = name[len("snap-"):-len(".udcsnap")]
        try:
            eid = int(stem)
        except ValueError:
            continue
        found.append((eid, os.path.join(str(directory), name)))
    found.sort()
    return found
