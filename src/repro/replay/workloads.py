"""Named deterministic workloads and their command scripts.

A replayable run is a *script*: an ordered list of externally visible
control-plane commands (tenant registrations, submissions, failure
injections, drains).  Scripts are derived purely from a
:class:`~repro.replay.runner.RunConfig` — same config, same script,
byte for byte — which is what makes a journal self-contained: its
header carries the config, so any reader can rebuild the exact command
sequence and re-execute any prefix of it.

Two workload families ship:

* ``fig2-medical`` — the paper's Figure 2 hospital pipeline, submitted
  once per patient with distinct inputs, a drain every ``round_every``
  submissions, and an optional deterministic fault schedule
  (``faults=[[t, domain], ...]``).
* ``tenant-trace`` — the diurnal multi-tenant stream from
  :func:`repro.workloads.tenants.generate_tenant_trace`, mirroring
  ``udc serve``: register every profile, submit arrivals in order,
  drain every ``round_every`` submissions.
* ``fig2-legacy`` — the same hospital pipeline, but *compiled*: the
  app and definition come from running the whole-program analyzer
  (:func:`repro.analysis.program.modularize`) over
  ``examples/legacy/fig2_monolith.py`` instead of being hand-cut.
  Same submission cadence as ``fig2-medical``; the workload's script —
  and therefore its journal — exercises the modularizer's determinism
  end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List

from repro.appmodel.dag import ModuleDAG
from repro.workloads.medical import build_medical_app
from repro.workloads.tenants import (
    default_tenant_profiles,
    generate_tenant_trace,
)

__all__ = ["Command", "REPLAY_WORKLOADS", "RunScript", "build_script"]


@dataclass(frozen=True)
class Command:
    """One externally visible control-plane command.

    ``args`` must be JSON-serializable — it is journaled verbatim and
    cross-checked on replay.  Applications are referenced by key into
    the script's app registry, never embedded (DAGs carry callables).
    """

    op: str  # "register-tenant" | "submit" | "inject-failure" | "drain"
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RunScript:
    """The full deterministic command sequence for one run."""

    commands: List[Command] = field(default_factory=list)
    #: app key -> application DAG (rebuilt deterministically from config)
    apps: Dict[str, ModuleDAG] = field(default_factory=dict)
    #: app key -> definition dict submitted alongside the app
    definitions: Dict[str, Dict] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.commands)


def _medical_inputs(patient: str) -> Dict[str, Any]:
    """Figure 2 input payloads, parameterized by patient id."""
    return {
        "A1": {"pixels": list(range(256)), "patient": patient},
        "A3": {"patient": patient},
        "B1": {"consented": True},
    }


def _fig2_script(params: Dict[str, Any], seed: int) -> RunScript:
    patients = int(params.get("patients", 4))
    round_every = max(1, int(params.get("round_every", 2)))
    faults = [tuple(f) for f in params.get("faults", [])]
    if patients < 1:
        raise ValueError("fig2-medical needs patients >= 1")
    dag, definition = build_medical_app()
    script = RunScript(apps={"medical": dag},
                       definitions={"medical": definition})
    script.commands.append(
        Command("register-tenant", {"tenant": "hospital", "weight": 1.0})
    )
    for when, domain in faults:
        script.commands.append(
            Command("inject-failure",
                    {"at": float(when), "domain": str(domain)})
        )
    for index in range(patients):
        script.commands.append(Command("submit", {
            "tenant": "hospital",
            "app": "medical",
            "inputs": _medical_inputs(f"p-{index:03d}"),
        }))
        if (index + 1) % round_every == 0:
            script.commands.append(Command("drain", {}))
    script.commands.append(Command("drain", {}))
    return script


def _fig2_legacy_script(params: Dict[str, Any], seed: int) -> RunScript:
    from repro.analysis.program import (
        attach_functions,
        input_payload,
        modularize,
    )

    patients = int(params.get("patients", 4))
    round_every = max(1, int(params.get("round_every", 2)))
    if patients < 1:
        raise ValueError("fig2-legacy needs patients >= 1")
    path = (Path(__file__).resolve().parents[3]
            / "examples" / "legacy" / "fig2_monolith.py")
    source = path.read_text(encoding="utf-8")
    result = modularize(source, name="fig2_monolith", seed=seed)
    # The analyzer never executes the source; the *workload* does, to
    # obtain the callables the emitted task modules compose over.  The
    # __main__ guard in the example keeps its demo run from firing.
    namespace: Dict[str, Any] = {"__name__": "fig2_monolith_legacy"}
    exec(compile(source, str(path), "exec"), namespace)
    dag = attach_functions(result.model, result.cut, result.emitted,
                           namespace)
    script = RunScript(apps={"legacy": dag},
                       definitions={"legacy": result.emitted.definition})
    script.commands.append(
        Command("register-tenant", {"tenant": "hospital", "weight": 1.0})
    )
    for index in range(patients):
        patient = f"p-{index:03d}"
        inputs = input_payload(
            result.model, result.emitted,
            image={"pixels": list(range(256)), "patient": patient},
            patient=patient, consented=True,
        )
        script.commands.append(Command("submit", {
            "tenant": "hospital",
            "app": "legacy",
            "inputs": inputs,
        }))
        if (index + 1) % round_every == 0:
            script.commands.append(Command("drain", {}))
    script.commands.append(Command("drain", {}))
    return script


def _tenant_trace_script(params: Dict[str, Any], seed: int) -> RunScript:
    tenants = int(params.get("tenants", 6))
    minutes = float(params.get("minutes", 20.0))
    rate = float(params.get("rate", 0.5))
    repeat_fraction = float(params.get("repeat_fraction", 0.25))
    round_every = max(1, int(params.get("round_every", 8)))
    # Autopilot knobs — all default-off, so scripts built from older
    # configs (and their journals) stay byte-identical.
    spot_fraction = float(params.get("spot_fraction", 0.0))
    budget = params.get("budget")
    slo_s = params.get("slo_s")
    if not 0.0 <= spot_fraction <= 1.0:
        raise ValueError("tenant-trace needs 0 <= spot_fraction <= 1")
    profiles = default_tenant_profiles(count=tenants, seed=seed)
    trace = generate_tenant_trace(
        profiles,
        peak_rate_per_minute=rate,
        horizon_s=minutes * 60.0,
        repeat_fraction=repeat_fraction,
        seed=seed,
    )
    script = RunScript()
    spot_count = int(round(spot_fraction * len(profiles)))
    for index, profile in enumerate(profiles):
        args: Dict[str, Any] = {
            "tenant": profile.name, "weight": profile.weight,
        }
        if index < spot_count:
            args["goal"] = "cheapest"
        if budget is not None:
            args["budget_dollars"] = float(budget)
        if slo_s is not None:
            args["slo_s"] = float(slo_s)
        script.commands.append(Command("register-tenant", args))
    # One app per tenant, rebuilt deterministically by archetype.
    for submission in trace.submissions:
        if submission.tenant not in script.apps:
            script.apps[submission.tenant] = submission.dag
            script.definitions[submission.tenant] = submission.definition
    for index, submission in enumerate(trace.submissions, start=1):
        script.commands.append(Command("submit", {
            "tenant": submission.tenant,
            "app": submission.tenant,
            "inputs": submission.inputs,
        }))
        if index % round_every == 0:
            script.commands.append(Command("drain", {}))
    script.commands.append(Command("drain", {}))
    return script


#: workload name -> (params, seed) -> RunScript
REPLAY_WORKLOADS: Dict[str, Callable[[Dict[str, Any], int], RunScript]] = {
    "fig2-medical": _fig2_script,
    "fig2-legacy": _fig2_legacy_script,
    "tenant-trace": _tenant_trace_script,
}


def build_script(workload: str, params: Dict[str, Any], seed: int) -> RunScript:
    """Build the deterministic command script for a named workload."""
    try:
        builder = REPLAY_WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            f"unknown replay workload {workload!r} "
            f"(expected one of {sorted(REPLAY_WORKLOADS)})"
        ) from None
    return builder(dict(params or {}), seed)
