"""Divergence localization: binary-search two runs to the first bad event.

Two flavors:

* :func:`first_divergence` — compare two *journals* (lists of
  :class:`~repro.replay.journal.JournalEvent`).  Under determinism,
  divergence is monotone: once two runs differ at event *k* their
  fingerprints differ at every event ``>= k`` (the state digest chains
  all prior state; the RNG digest covers every stream's position).  That
  monotonicity is what makes binary search valid — and because it is an
  *assumption* about the runs, the result is safety-checked (the found
  event must differ and its predecessor must match) with a linear-scan
  fallback for non-monotone inputs.
* :func:`bisect_replay` — compare a journal against *re-execution*,
  probing ``fingerprint_at(eid)`` O(log n) times instead of replaying
  all n prefixes.  This is ``udc bisect JOURNAL --against-config``: find
  where a journaled run departs from what the config says should happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.replay.journal import JournalEvent

__all__ = ["Divergence", "bisect_replay", "first_divergence"]


@dataclass(frozen=True)
class Divergence:
    """The first event at which two runs disagree."""

    eid: int
    #: which part disagreed: "op" | "args" | "fingerprint" | "missing"
    field: str
    a: object
    b: object

    def describe(self) -> str:
        if self.field == "missing":
            return (f"event {self.eid}: present in only one journal "
                    f"(lengths {self.a} vs {self.b})")
        return (f"event {self.eid}: first divergence in {self.field} "
                f"(a={self.a!r}, b={self.b!r})")


def _event_diff(a: JournalEvent, b: JournalEvent) -> Optional[Divergence]:
    """The specific field where two same-eid events disagree, if any."""
    if a.op != b.op:
        return Divergence(a.eid, "op", a.op, b.op)
    if a.args != b.args:
        return Divergence(a.eid, "args", a.args, b.args)
    if a.fingerprint != b.fingerprint:
        return Divergence(a.eid, "fingerprint", a.fingerprint, b.fingerprint)
    return None


def first_divergence(
    events_a: Sequence[JournalEvent],
    events_b: Sequence[JournalEvent],
) -> Optional[Divergence]:
    """Smallest event id where the two journals disagree, or None.

    O(log n) comparisons via binary search on the shared prefix
    (divergence is monotone for deterministic runs), then a safety
    check; non-monotone inputs fall back to a linear scan rather than
    returning a wrong answer.  A journal that is a strict prefix of the
    other (no disagreement inside the overlap) diverges at its end with
    ``field="missing"``.
    """
    shared = min(len(events_a), len(events_b))
    if shared == 0:
        if len(events_a) == len(events_b):
            return None
        return Divergence(0, "missing", len(events_a), len(events_b))

    # Invariant: everything before `lo` matches; if any index in
    # [lo, shared) differs, the first one is in [lo, hi].
    lo, hi = 0, shared - 1
    found: Optional[Divergence] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        diff = _event_diff(events_a[mid], events_b[mid])
        if diff is None:
            lo = mid + 1
        else:
            found = diff
            hi = mid - 1
    if found is None:
        if len(events_a) != len(events_b):
            return Divergence(shared, "missing",
                              len(events_a), len(events_b))
        return None
    # Safety check for the monotonicity assumption: the predecessor of
    # the found event must match.  If it doesn't, the divergence is not
    # monotone — scan for the true first disagreement.
    index = found.eid if found.eid < shared else shared - 1
    if index > 0 and _event_diff(events_a[index - 1],
                                 events_b[index - 1]) is not None:
        for probe in range(shared):
            diff = _event_diff(events_a[probe], events_b[probe])
            if diff is not None:
                return diff
    return found


def bisect_replay(
    events: Sequence[JournalEvent],
    probe: Callable[[int], Dict[str, str]],
) -> Optional[Divergence]:
    """First journaled event whose fingerprint disagrees with ``probe``.

    ``probe(eid)`` re-executes the config-derived script through event
    ``eid`` and returns the post-state fingerprint (see
    :meth:`~repro.replay.runner.ReplayRunner.fingerprint_at`).  Binary
    search costs O(log n) probes — each probe is a full prefix
    re-execution, so this is the difference between a bisect that takes
    seconds and one that takes hours on long journals.
    """
    if not events:
        return None
    lo, hi = 0, len(events) - 1
    found: Optional[Divergence] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        recorded = events[mid].fingerprint
        replayed = probe(events[mid].eid)
        if recorded == replayed:
            lo = mid + 1
        else:
            found = Divergence(events[mid].eid, "fingerprint",
                               recorded, replayed)
            hi = mid - 1
    return found
