"""The event journal: an append-only, versioned JSONL run log.

One line per record.  The first line is a header carrying the journal
format version and the full :class:`~repro.replay.runner.RunConfig`
(everything needed to re-derive the run's command script); every
subsequent line is one event::

    {"kind": "header", "version": 1, "config": {...}}
    {"kind": "event", "eid": 0, "op": "register-tenant",
     "args": {...}, "info": {...},
     "fp": {"clock": "0.0", "rng": "<sha256>", "state": "<sha256>"}}

Event ids are contiguous and monotonic from 0.  ``fp`` is the
*post-state* fingerprint — the clock, every named RNG stream's state
digest, and a digest over the externally visible service state — which
is what divergence bisection compares.  ``info`` records the event's
observable outcome (dispatch counts, finalized handles, rejections).

Each append is flushed and fsync'd before the caller proceeds, so a
crash loses at most the event *in flight*; a torn final line (the crash
landed mid-write) is detected and dropped on read.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalEvent",
    "JournalWriter",
    "read_journal",
]

JOURNAL_VERSION = 1


class JournalError(Exception):
    """Raised for malformed, incompatible, or inconsistent journals."""


@dataclass(frozen=True)
class JournalEvent:
    """One journaled control-plane event and its post-state fingerprint."""

    eid: int
    op: str
    args: Dict[str, Any] = field(default_factory=dict)
    #: observable outcome (dispatched counts, finalized handles, ...)
    info: Dict[str, Any] = field(default_factory=dict)
    #: post-state fingerprint: {"clock", "rng", "state"} digests
    fingerprint: Dict[str, str] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "event",
            "eid": self.eid,
            "op": self.op,
            "args": self.args,
            "info": self.info,
            "fp": self.fingerprint,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "JournalEvent":
        try:
            return cls(
                eid=int(payload["eid"]),
                op=str(payload["op"]),
                args=payload.get("args", {}),
                info=payload.get("info", {}),
                fingerprint=payload.get("fp", {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed event record: {exc}") from exc


def _encode(payload: Dict[str, Any]) -> str:
    """Canonical single-line JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class JournalWriter:
    """Append events to a journal file, durably.

    ``resume=False`` (the default) truncates and writes a fresh header;
    ``resume=True`` validates the existing header against ``config``,
    drops a torn final line if the previous writer crashed mid-append,
    and continues appending after the last intact event.
    """

    def __init__(self, path: str, config: Dict[str, Any],
                 resume: bool = False):
        self.path = str(path)
        self.config = config
        self.last_eid = -1
        if resume:
            existing_config, events, _torn = read_journal(self.path)
            if existing_config != config:
                raise JournalError(
                    f"journal {self.path} was recorded under a different "
                    f"run config; refusing to append"
                )
            # Re-write the intact prefix: drops any torn tail byte-exactly.
            lines = [_encode({"kind": "header",
                              "version": JOURNAL_VERSION,
                              "config": config})]
            lines += [_encode(e.to_json_dict()) for e in events]
            with open(self.path, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")
            self.last_eid = events[-1].eid if events else -1
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line(_encode({
                "kind": "header",
                "version": JOURNAL_VERSION,
                "config": config,
            }))

    def _write_line(self, line: str) -> None:
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, event: JournalEvent) -> None:
        if event.eid != self.last_eid + 1:
            raise JournalError(
                f"event ids must be contiguous: got {event.eid} after "
                f"{self.last_eid}"
            )
        self._write_line(_encode(event.to_json_dict()))
        self.last_eid = event.eid

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(
    path: str,
) -> Tuple[Dict[str, Any], List["JournalEvent"], bool]:
    """Parse a journal; returns ``(config, events, torn_tail)``.

    A torn (crash-truncated or otherwise unparsable) final line is
    dropped and reported via ``torn_tail=True`` — every intact record
    before it is still usable, which is the whole point of an
    append-only log.  Corruption anywhere *else* raises
    :class:`JournalError`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise JournalError(f"journal {path} is empty")

    def _parse(index: int, line: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                return None  # torn tail: the crash landed mid-append
            raise JournalError(
                f"journal {path} line {index + 1} is corrupt"
            ) from None

    header = _parse(0, lines[0])
    if header is None:
        raise JournalError(f"journal {path} has no intact header")
    if header.get("kind") != "header":
        raise JournalError(f"journal {path} does not start with a header")
    version = header.get("version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} is format version {version!r}; this reader "
            f"supports {JOURNAL_VERSION}"
        )
    config = header.get("config", {})

    events: List[JournalEvent] = []
    torn = False
    for index, line in enumerate(lines[1:], start=1):
        payload = _parse(index, line)
        if payload is None:
            torn = True
            break
        if payload.get("kind") != "event":
            raise JournalError(
                f"journal {path} line {index + 1}: unexpected record kind "
                f"{payload.get('kind')!r}"
            )
        event = JournalEvent.from_json_dict(payload)
        expected = events[-1].eid + 1 if events else 0
        if event.eid != expected:
            raise JournalError(
                f"journal {path} line {index + 1}: event id {event.eid} "
                f"breaks the contiguous sequence (expected {expected})"
            )
        events.append(event)
    return config, events, torn
