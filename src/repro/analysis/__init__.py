"""Static analysis of user definitions (``udc lint``).

The paper's §3.4 obliges UDC to detect conflicts among user-defined
aspects, and §4's verification story audits fulfillment *after* a run.
This package is the static half of that story: four independent passes
over ``(UserDefinition, ModuleDAG, datacenter catalog)`` that surface —
before any placement is attempted — the mistakes the runtime would
otherwise fail on mid-run:

* :mod:`~repro.analysis.conflicts` — cross-module contradictions
  (UDC010–UDC015);
* :mod:`~repro.analysis.feasibility` — definition vs. the datacenter
  catalog and tenant quota (UDC020–UDC026);
* :mod:`~repro.analysis.structure` — DAG shape problems (UDC030–UDC034);
* :mod:`~repro.analysis.infoflow` — sensitivity-lattice information flow
  (UDC040–UDC043).

:func:`analyze_definition` orchestrates them; each pass degrades
gracefully when its context (app, datacenter, quota) is absent, so the
same entry point serves the CLI, the opt-in ``analyze=`` parse hook, and
the :class:`~repro.service.UDCService` front door.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.analysis.conflicts import conflict_pass
from repro.analysis.diagnostics import (
    CODE_CATALOG,
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.feasibility import feasibility_pass
from repro.analysis.infoflow import Sensitivity, clearance_of, infoflow_pass
from repro.analysis.structure import structure_pass
from repro.appmodel.dag import ModuleDAG
from repro.core.spec import SpecError, UserDefinition, parse_definition
from repro.hardware.topology import Datacenter, DatacenterSpec, build_datacenter
from repro.service.tenants import TenantQuota

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "CODE_CATALOG",
    "Diagnostic",
    "Sensitivity",
    "Severity",
    "analyze_definition",
    "clearance_of",
    "conflict_pass",
    "feasibility_pass",
    "infoflow_pass",
    "structure_pass",
]


def _coerce_definition(definition: Any) -> UserDefinition:
    """Accept a raw dict, a parsed definition, or a fluent builder."""
    if isinstance(definition, UserDefinition):
        return definition
    build = getattr(definition, "build_definition", None)
    if callable(build):
        return build()
    return parse_definition(definition)


def analyze_definition(
    definition: Union[Dict[str, Any], UserDefinition, Any],
    app: Optional[ModuleDAG] = None,
    datacenter: Optional[Union[Datacenter, DatacenterSpec]] = None,
    *,
    quota: Optional[TenantQuota] = None,
    in_flight: int = 0,
    submitted: int = 0,
    tenant_tier: Optional[str] = None,
) -> AnalysisReport:
    """Run every applicable analysis pass and return one sorted report.

    ``definition`` may be a raw aspect dict, a parsed
    :class:`UserDefinition`, or anything with a ``build_definition()``
    hook (the fluent :class:`~repro.core.builder.DefinitionBuilder`).  A
    dict that fails to parse yields a UDC001 report (one finding per
    :class:`SpecError` problem) instead of raising.

    ``app`` unlocks the structural, information-flow, and cost/deadline
    checks; ``datacenter`` (built, or just a :class:`DatacenterSpec`)
    unlocks the feasibility pass; ``quota``/``in_flight``/``submitted``
    let the serving layer lint against a tenant's admission state, and
    ``tenant_tier`` (``"firm"`` / ``"spot"``) unlocks the tier-aware
    contradiction checks (UDC015).
    """
    try:
        parsed = _coerce_definition(definition)
    except SpecError as exc:
        return AnalysisReport([
            Diagnostic(
                code="UDC001", severity=Severity.ERROR, module="*",
                message=problem,
                hint="fix the definition syntax; nothing else was checked",
            )
            for problem in exc.problems
        ])

    if isinstance(datacenter, DatacenterSpec):
        datacenter = build_datacenter(datacenter)
    dc_spec = datacenter.spec if datacenter is not None else None

    findings = list(conflict_pass(parsed, app=app, datacenter_spec=dc_spec,
                                  tenant_tier=tenant_tier))
    findings += feasibility_pass(
        parsed, app=app, datacenter=datacenter,
        quota=quota, in_flight=in_flight, submitted=submitted,
    )
    if app is not None:
        findings += structure_pass(app)
        findings += infoflow_pass(parsed, app)
    return AnalysisReport(findings)
