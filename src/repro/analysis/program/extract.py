"""Whole-program extraction: legacy Python source → program model.

The paper's §4 ("Supporting legacy software") claims a static analysis
*"can infer dependencies and cuts a program into segments"*, with
developers providing *"hints on where application semantics transition"*.
This module is the inference half: it parses one legacy Python file —
**AST only, never imported or executed** — and recovers

* **stores** — module-level mutable globals (dict/list/set literals or
  constructor calls), the program's standing data;
* **functions** — per-function summaries: params, direct calls, which
  stores they read and mutate, loop depth, and the ``udc:`` directive
  hints carried in their docstrings;
* **roles** — *drivers* (uncalled orchestration functions, plus the
  module top level when it calls into the program), *tasks* (functions a
  driver calls), and *helpers* (functions only tasks call, inlined into
  their callers);
* **flows** — the data-flow graph: task→task edges from def-use chains
  inside driver bodies, store→task read edges, task→store write edges,
  each sized in bytes.

The developer-hint channel is deliberately AST-visible: a directive line
``udc: key=value ... flag`` inside a function docstring, or the same
string as a module-level variable *annotation*::

    patient_records: "udc: sensitivity=phi size_gb=50 record_bytes=64kb" = {}

    def detect_objects(image):
        \"\"\"CNN inference over the preprocessed image.

        udc: work=40 devices=gpu output_bytes=64kb state_bytes=32mb
        \"\"\"

Anything outside the supported subset raises
:class:`ProgramAnalysisError` naming the construct and line, so the
``udc modularize`` CLI can fail with an actionable message instead of
emitting a wrong definition.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Binding",
    "FlowEdge",
    "FunctionSummary",
    "ProgramAnalysisError",
    "ProgramModel",
    "StoreSummary",
    "extract_program",
    "parse_directives",
]

#: labels accepted by the ``sensitivity=`` / ``source=`` directives
SENSITIVITY_LABELS = ("public", "anonymized", "phi")

#: store methods that only observe state
_READ_METHODS = frozenset({"get", "items", "keys", "values", "count", "index", "copy"})
#: store methods that mutate state
_WRITE_METHODS = frozenset({
    "append", "add", "update", "setdefault", "pop", "popitem", "extend",
    "insert", "remove", "discard", "clear", "appendleft",
})
#: constructor calls whose module-level result is a store
_STORE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter",
})

_BYTE_SUFFIXES = {"kb": 1 << 10, "mb": 1 << 20, "gb": 1 << 30}


class ProgramAnalysisError(Exception):
    """The source uses a construct outside the supported subset (or a
    malformed ``udc:`` directive); the message names file line numbers."""


def _parse_bytes(raw: str, context: str) -> int:
    token = raw.strip().lower()
    for suffix, scale in _BYTE_SUFFIXES.items():
        if token.endswith(suffix):
            try:
                return int(float(token[: -len(suffix)]) * scale)
            except ValueError:
                break
    try:
        return int(token)
    except ValueError:
        raise ProgramAnalysisError(
            f"{context}: cannot parse byte size {raw!r} "
            f"(want an int, optionally suffixed kb/mb/gb)"
        ) from None


def parse_directives(text: Optional[str], context: str) -> Dict[str, object]:
    """Parse every ``udc:`` directive line out of a docstring/annotation.

    Returns a flat dict of directive keys.  Repeatable keys (``read=``,
    ``write=``) accumulate into a dict.  Unknown keys are an error — a
    typo in a hint must not silently become a default.
    """
    out: Dict[str, object] = {}
    if not text:
        return out
    for line in text.splitlines():
        line = line.strip()
        if not line.lower().startswith("udc:"):
            continue
        for token in line[len("udc:"):].split():
            key, sep, value = token.partition("=")
            key = key.lower()
            if not sep:
                if key in ("sanitizer", "hot"):
                    out[key] = True
                    continue
                raise ProgramAnalysisError(
                    f"{context}: unknown directive flag {key!r}")
            if key == "work":
                out[key] = float(value)
            elif key == "devices":
                out[key] = tuple(d.strip().lower() for d in value.split(",")
                                 if d.strip())
            elif key in ("output_bytes", "state_bytes", "record_bytes"):
                out[key] = _parse_bytes(value, context)
            elif key in ("max_parallelism", "size_gb"):
                out[key] = float(value)
            elif key in ("sensitivity", "source"):
                label = value.strip().lower()
                if label not in SENSITIVITY_LABELS:
                    raise ProgramAnalysisError(
                        f"{context}: {key}= must be one of "
                        f"{'/'.join(SENSITIVITY_LABELS)}, got {value!r}")
                out[key] = label
            elif key in ("read", "write"):
                store, colon, nbytes = value.partition(":")
                if not colon:
                    raise ProgramAnalysisError(
                        f"{context}: {key}= wants <store>:<bytes>, "
                        f"got {value!r}")
                table = out.setdefault(key, {})
                assert isinstance(table, dict)
                table[store] = _parse_bytes(nbytes, context)
            else:
                raise ProgramAnalysisError(
                    f"{context}: unknown directive key {key!r}")
    return out


@dataclass(frozen=True)
class StoreSummary:
    """One module-level mutable global — standing data of the program."""

    name: str
    lineno: int
    size_gb: float = 1.0
    record_bytes: int = 4096
    hot: bool = False
    #: declared label (directive); None means unlabeled (public) until
    #: the taint pass possibly raises it from inflows
    sensitivity: Optional[str] = None


@dataclass(frozen=True)
class Binding:
    """Where one argument of a task invocation comes from.

    ``kind`` is ``"task"`` (output of another task), ``"input"`` (a
    driver parameter — the run's external input), ``"store"`` (a global
    passed by reference), or ``"const"`` (a literal).
    """

    param: str
    kind: str
    ref: object = None


@dataclass
class FunctionSummary:
    """Everything extraction knows about one function."""

    name: str
    lineno: int
    params: Tuple[str, ...] = ()
    calls: Tuple[str, ...] = ()          # direct callees, in call order
    reads: Tuple[str, ...] = ()          # store names (sorted)
    writes: Tuple[str, ...] = ()         # store names (sorted)
    loop_depth: int = 0
    returns_value: bool = False
    # -- directive-carried hints (with defaults) --------------------------
    work: float = 0.0                    # 0 = derive from loop depth
    devices: Tuple[str, ...] = ("cpu",)
    output_bytes: int = 1024
    state_bytes: int = 1024
    max_parallelism: Optional[float] = None
    sanitizer: bool = False
    source_label: Optional[str] = None   # produces labeled data ex nihilo
    read_bytes: Dict[str, int] = field(default_factory=dict)
    write_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def effective_work(self) -> float:
        """Directive work, else a loop-nesting estimate (4x per level)."""
        if self.work > 0:
            return self.work
        return float(min(4 ** self.loop_depth, 64))


@dataclass(frozen=True)
class FlowEdge:
    """One data-flow edge, in bytes per run.

    ``kind`` is ``"flow"`` (task→task), ``"read"`` (store→task), or
    ``"write"`` (task→store).
    """

    src: str
    dst: str
    bytes: int
    kind: str


@dataclass
class ProgramModel:
    """The extracted whole-program view the later passes consume."""

    name: str
    stores: Dict[str, StoreSummary] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    drivers: Tuple[str, ...] = ()
    tasks: Tuple[str, ...] = ()          # driver-called units, post-inlining
    helpers: Tuple[str, ...] = ()        # inlined into their callers
    dead: Tuple[str, ...] = ()           # never reached from a driver
    flows: Tuple[FlowEdge, ...] = ()
    #: task -> argument bindings, for re-wiring execution after the cut
    bindings: Dict[str, Tuple[Binding, ...]] = field(default_factory=dict)
    #: driver parameter names == the program's external input interface
    input_params: Tuple[str, ...] = ()

    def task_summary(self, name: str) -> FunctionSummary:
        return self.functions[name]


# --------------------------------------------------------------- function AST


class _FunctionVisitor(ast.NodeVisitor):
    """Collect calls, store accesses, and loop depth from one body."""

    def __init__(self, store_names, function_names):
        self._stores = store_names
        self._functions = function_names
        self.calls: List[str] = []
        self.reads: set = set()
        self.writes: set = set()
        self.loop_depth = 0
        self.returns_value = False
        self._depth = 0

    # -- loops ------------------------------------------------------------
    def _loop(self, node):
        self._depth += 1
        self.loop_depth = max(self.loop_depth, self._depth)
        self.generic_visit(node)
        self._depth -= 1

    visit_For = _loop
    visit_While = _loop

    def visit_Return(self, node: ast.Return):
        if node.value is not None:
            self.returns_value = True
        self.generic_visit(node)

    # -- store accesses ----------------------------------------------------
    def visit_Name(self, node: ast.Name):
        if node.id in self._stores:
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self.writes.add(node.id)
            else:
                self.reads.add(node.id)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript):
        target = node.value
        if isinstance(target, ast.Name) and target.id in self._stores:
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self.writes.add(target.id)
            else:
                self.reads.add(target.id)
            self.visit(node.slice)
            return
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign):
        target = node.target
        if isinstance(target, ast.Name) and target.id in self._stores:
            self.writes.add(target.id)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._functions:
            self.calls.append(func.id)
        elif isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in self._stores:
            if func.attr in _WRITE_METHODS:
                self.writes.add(func.value.id)
            else:
                self.reads.add(func.value.id)
            # The receiver Name is classified above; visiting it again
            # would re-count every mutating call as a read too.
            for arg in node.args:
                self.visit(arg)
            for keyword in node.keywords:
                self.visit(keyword.value)
            return
        self.generic_visit(node)


def _summarize_function(node, store_names, function_names) -> FunctionSummary:
    params = tuple(a.arg for a in node.args.args)
    directives = parse_directives(
        ast.get_docstring(node), f"{node.name}() line {node.lineno}")
    visitor = _FunctionVisitor(store_names, function_names)
    for stmt in node.body:
        visitor.visit(stmt)
    sanitizer = bool(directives.get("sanitizer", False))
    for deco in node.decorator_list:
        tail = deco
        while isinstance(tail, ast.Attribute):
            tail = tail.attr if isinstance(tail.attr, str) else tail.value
        deco_name = tail if isinstance(tail, str) else (
            tail.id if isinstance(tail, ast.Name) else "")
        if deco_name.endswith("sanitizer"):
            sanitizer = True
    read_over = dict(directives.get("read", {}))
    write_over = dict(directives.get("write", {}))
    return FunctionSummary(
        name=node.name,
        lineno=node.lineno,
        params=params,
        calls=tuple(visitor.calls),
        reads=tuple(sorted(visitor.reads | set(read_over))),
        writes=tuple(sorted(visitor.writes | set(write_over))),
        loop_depth=visitor.loop_depth,
        returns_value=visitor.returns_value,
        work=float(directives.get("work", 0.0)),
        devices=tuple(directives.get("devices", ("cpu",))),
        output_bytes=int(directives.get("output_bytes", 1024)),
        state_bytes=int(directives.get("state_bytes", 1024)),
        max_parallelism=directives.get("max_parallelism"),
        sanitizer=sanitizer,
        source_label=directives.get("source"),
        read_bytes=read_over,
        write_bytes=write_over,
    )


# ----------------------------------------------------------------- driver AST


class _DriverWalk:
    """Def-use over one driver body: which call result feeds which call.

    The supported driver subset is deliberately small — straight-line
    orchestration: ``x = task(...)``, bare ``task(...)`` statements,
    ``return``/``pass``, and nothing else.  Conditionals and loops in a
    driver would make the task graph input-dependent, which a static
    definition cannot express.
    """

    def __init__(self, model_functions, store_names, driver_name,
                 driver_params):
        self._functions = model_functions
        self._stores = store_names
        self._name = driver_name
        #: var name -> Binding-shaped (kind, ref)
        self._env: Dict[str, Tuple[str, object]] = {
            p: ("input", p) for p in driver_params
        }
        self.invocations: List[Tuple[str, Tuple[Binding, ...]]] = []

    def _err(self, node, what: str):
        raise ProgramAnalysisError(
            f"driver {self._name}() line {node.lineno}: {what}")

    def _resolve(self, expr, node) -> Tuple[str, object]:
        if isinstance(expr, ast.Name):
            if expr.id in self._stores:
                return ("store", expr.id)
            if expr.id in self._env:
                binding = self._env[expr.id]
                if binding is None:
                    self._err(node, f"argument {expr.id!r} has an "
                                    f"unanalyzable value")
                return binding
            self._err(node, f"argument {expr.id!r} is not a parameter, "
                            f"store, or earlier task result")
        if isinstance(expr, ast.Constant):
            return ("const", expr.value)
        if isinstance(expr, ast.Call):
            callee = self._register_call(expr)
            return ("task", callee)
        self._err(node, f"unsupported argument expression "
                        f"{ast.dump(expr)[:60]}")
        raise AssertionError  # unreachable; _err always raises

    def _register_call(self, call: ast.Call) -> str:
        func = call.func
        if not isinstance(func, ast.Name) or func.id not in self._functions:
            self._err(call, "drivers may only call module-level functions "
                            "defined in this file")
        callee = func.id
        summary = self._functions[callee]
        bindings: List[Binding] = []
        if len(call.args) > len(summary.params):
            self._err(call, f"{callee}() takes {len(summary.params)} "
                            f"parameter(s), got {len(call.args)} positional")
        for index, arg in enumerate(call.args):
            kind, ref = self._resolve(arg, call)
            bindings.append(Binding(summary.params[index], kind, ref))
        for kw in call.keywords:
            if kw.arg is None or kw.arg not in summary.params:
                self._err(call, f"{callee}() has no parameter {kw.arg!r}")
            kind, ref = self._resolve(kw.value, call)
            bindings.append(Binding(kw.arg, kind, ref))
        self.invocations.append((callee, tuple(bindings)))
        return callee

    def walk(self, body) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) != 1 \
                        or not isinstance(stmt.targets[0], ast.Name):
                    self._err(stmt, "only single-name assignment targets "
                                    "are supported in drivers")
                target = stmt.targets[0].id
                value = stmt.value
                if isinstance(value, ast.Call):
                    func = value.func
                    if isinstance(func, ast.Name) \
                            and func.id in self._functions:
                        callee = self._register_call(value)
                        self._env[target] = ("task", callee)
                    else:
                        self._env[target] = None  # opaque (e.g. len(...))
                elif isinstance(value, (ast.Constant, ast.Name)):
                    try:
                        self._env[target] = self._resolve(value, stmt)
                    except ProgramAnalysisError:
                        self._env[target] = None
                else:
                    self._env[target] = None
            elif isinstance(stmt, ast.Expr):
                if isinstance(stmt.value, ast.Call):
                    func = stmt.value.func
                    if isinstance(func, ast.Name) \
                            and func.id in self._functions:
                        self._register_call(stmt.value)
                    # foreign calls (print, logging) are orchestration
                    # noise, not data flow — ignored.
                elif isinstance(stmt.value, ast.Constant):
                    pass  # docstring
                else:
                    self._err(stmt, "unsupported expression statement")
            elif isinstance(stmt, (ast.Return, ast.Pass)):
                continue
            else:
                self._err(stmt, f"unsupported statement "
                                f"{type(stmt).__name__} in a driver body "
                                f"(drivers must be straight-line "
                                f"orchestration)")


# ------------------------------------------------------------- store scanning


def _scan_stores(tree: ast.Module) -> Dict[str, StoreSummary]:
    stores: Dict[str, StoreSummary] = {}

    def is_store_value(value) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else "")
            return name in _STORE_CONSTRUCTORS
        return False

    for node in tree.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = node.annotation
            text = annotation.value \
                if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str) else ""
            directives = parse_directives(
                text, f"store {node.target.id} line {node.lineno}")
            if directives or (node.value is not None
                              and is_store_value(node.value)):
                stores[node.target.id] = StoreSummary(
                    name=node.target.id,
                    lineno=node.lineno,
                    size_gb=float(directives.get("size_gb", 1.0)),
                    record_bytes=int(directives.get("record_bytes", 4096)),
                    hot=bool(directives.get("hot", False)),
                    sensitivity=directives.get("sensitivity"),
                )
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and is_store_value(node.value):
            name = node.targets[0].id
            stores[name] = StoreSummary(name=name, lineno=node.lineno)
    return stores


# ---------------------------------------------------------------- whole file


def extract_program(source: str, name: str = "legacy-app") -> ProgramModel:
    """Parse one legacy file into a :class:`ProgramModel`.

    Raises :class:`ProgramAnalysisError` on out-of-subset constructs,
    with the offending function and line in the message.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ProgramAnalysisError(
            f"{name}: not valid Python — {exc.msg} (line {exc.lineno})"
        ) from None

    stores = _scan_stores(tree)
    fn_nodes = {node.name: node for node in tree.body
                if isinstance(node, ast.FunctionDef)}
    functions = {
        fname: _summarize_function(node, set(stores), set(fn_nodes))
        for fname, node in fn_nodes.items()
    }
    for fname, summary in functions.items():
        unknown = (set(summary.read_bytes) | set(summary.write_bytes)) \
            - set(stores)
        if unknown:
            raise ProgramAnalysisError(
                f"{fname}() read=/write= directives name unknown "
                f"store(s) {sorted(unknown)}")

    # -- roles ------------------------------------------------------------
    callers: Dict[str, set] = {fname: set() for fname in functions}
    for fname, summary in functions.items():
        for callee in summary.calls:
            callers[callee].add(fname)

    drivers = [fname for fname, node in fn_nodes.items()
               if not callers[fname] and functions[fname].calls]
    driver_set = set(drivers)

    # The module top level can be a driver too (scripts without main()).
    toplevel_stmts = [
        node for node in tree.body
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Import, ast.ImportFrom,
                                 ast.Assign, ast.AnnAssign))
    ]
    has_toplevel_calls = any(
        isinstance(n, (ast.Expr, ast.If)) for n in toplevel_stmts
    )

    tasks = sorted({callee for d in drivers
                    for callee in functions[d].calls})
    for task in tasks:
        extra = callers[task] - driver_set
        if extra:
            raise ProgramAnalysisError(
                f"{task}() is called both by driver(s) and by "
                f"{sorted(extra)} — a driver-called function may not "
                f"also be a helper")

    if not drivers:
        detail = ("the module top level calls functions, which is not yet "
                  "supported; wrap the orchestration in a main()"
                  if has_toplevel_calls else
                  "no function orchestrates the others")
        raise ProgramAnalysisError(
            f"{name}: no driver found ({detail})")

    # -- helper inlining ---------------------------------------------------
    task_set = set(tasks)

    def close_helpers(task: str) -> set:
        seen: set = set()
        frontier = [c for c in functions[task].calls]
        while frontier:
            helper = frontier.pop()
            if helper in seen or helper in driver_set:
                continue
            if helper in task_set and helper != task:
                raise ProgramAnalysisError(
                    f"{task}() calls {helper}(), which a driver also "
                    f"calls — task-to-task calls must go through the "
                    f"driver")
            seen.add(helper)
            frontier.extend(functions[helper].calls)
        return seen

    helper_names: set = set()
    inlined: Dict[str, FunctionSummary] = {}
    for task in tasks:
        closure = close_helpers(task)
        helper_names |= closure
        summary = functions[task]
        if not closure:
            inlined[task] = summary
            continue
        reads = set(summary.reads)
        writes = set(summary.writes)
        work = summary.effective_work
        sanitizer = summary.sanitizer
        source = summary.source_label
        read_bytes = dict(summary.read_bytes)
        write_bytes = dict(summary.write_bytes)
        for helper in sorted(closure):
            h = functions[helper]
            reads |= set(h.reads)
            writes |= set(h.writes)
            work += h.effective_work
            sanitizer = sanitizer or h.sanitizer
            if h.source_label is not None:
                source = _max_label(source, h.source_label)
            for store, nbytes in h.read_bytes.items():
                read_bytes[store] = max(read_bytes.get(store, 0), nbytes)
            for store, nbytes in h.write_bytes.items():
                write_bytes[store] = max(write_bytes.get(store, 0), nbytes)
        inlined[task] = FunctionSummary(
            name=task, lineno=summary.lineno, params=summary.params,
            calls=summary.calls, reads=tuple(sorted(reads)),
            writes=tuple(sorted(writes)), loop_depth=summary.loop_depth,
            returns_value=summary.returns_value, work=work,
            devices=summary.devices, output_bytes=summary.output_bytes,
            state_bytes=summary.state_bytes,
            max_parallelism=summary.max_parallelism, sanitizer=sanitizer,
            source_label=source, read_bytes=read_bytes,
            write_bytes=write_bytes,
        )

    dead = sorted(set(functions) - task_set - driver_set - helper_names)

    # -- driver def-use → invocations -------------------------------------
    input_params: List[str] = []
    invocations: Dict[str, Tuple[Binding, ...]] = {}
    for driver in sorted(drivers, key=lambda d: fn_nodes[d].lineno):
        dsum = functions[driver]
        for param in dsum.params:
            if param not in input_params:
                input_params.append(param)
        walk = _DriverWalk(functions, set(stores), driver, dsum.params)
        walk.walk(fn_nodes[driver].body)
        for callee, bindings in walk.invocations:
            if callee in invocations:
                raise ProgramAnalysisError(
                    f"{callee}() is invoked more than once across the "
                    f"driver(s) — each task must run exactly once per "
                    f"submission")
            invocations[callee] = bindings

    # -- flows -------------------------------------------------------------
    flows: List[FlowEdge] = []
    for task in tasks:
        summary = inlined[task]
        for binding in invocations.get(task, ()):
            if binding.kind == "task":
                producer = inlined[str(binding.ref)]
                flows.append(FlowEdge(str(binding.ref), task,
                                      producer.output_bytes, "flow"))
        for store in summary.reads:
            nbytes = summary.read_bytes.get(
                store, stores[store].record_bytes)
            flows.append(FlowEdge(store, task, nbytes, "read"))
        for store in summary.writes:
            nbytes = summary.write_bytes.get(store, summary.output_bytes)
            flows.append(FlowEdge(task, store, nbytes, "write"))

    deduped: Dict[Tuple[str, str, str], int] = {}
    for edge in flows:
        key = (edge.src, edge.dst, edge.kind)
        deduped[key] = max(deduped.get(key, 0), edge.bytes)
    flow_tuple = tuple(
        FlowEdge(src, dst, deduped[(src, dst, kind)], kind)
        for (src, dst, kind) in sorted(deduped)
    )

    touched = {e.src for e in flow_tuple} | {e.dst for e in flow_tuple}
    for task in tasks:
        if task not in touched:
            raise ProgramAnalysisError(
                f"{task}() neither accesses a store nor exchanges data "
                f"with another task — it is detached from the data flow "
                f"(a definition for it would only warn)")
    # Untouched stores are standing data no task uses; emitting them
    # would only draw the analyzer's UDC032 warning.  Drop them.
    stores = {name: store for name, store in stores.items()
              if name in touched}

    model = ProgramModel(
        name=name,
        stores=stores,
        functions={**functions, **inlined},
        drivers=tuple(sorted(drivers)),
        tasks=tuple(tasks),
        helpers=tuple(sorted(helper_names)),
        dead=tuple(dead),
        flows=flow_tuple,
        bindings=invocations,
        input_params=tuple(input_params),
    )
    _check_task_dag(model)
    return model


_LABEL_RANK = {None: -1, "public": 0, "anonymized": 1, "phi": 2}


def _max_label(a: Optional[str], b: Optional[str]) -> Optional[str]:
    return a if _LABEL_RANK[a] >= _LABEL_RANK[b] else b


def _check_task_dag(model: ProgramModel) -> None:
    """Direct task→task flows must be acyclic (driver order makes this
    nearly automatic, but keyword-arg self-feeding would slip through)."""
    adjacency: Dict[str, List[str]] = {t: [] for t in model.tasks}
    for edge in model.flows:
        if edge.kind == "flow":
            adjacency[edge.src].append(edge.dst)
    state: Dict[str, int] = {}

    def visit(node: str):
        state[node] = 1
        for nxt in adjacency[node]:
            if state.get(nxt) == 1:
                raise ProgramAnalysisError(
                    f"task flow cycle through {nxt}()")
            if state.get(nxt) is None:
                visit(nxt)
        state[node] = 2

    for task in model.tasks:
        if state.get(task) is None:
            visit(task)
