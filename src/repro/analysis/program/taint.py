"""Interprocedural sensitivity inference over the extracted program.

Mirrors the lattice and propagation rules of
:mod:`repro.analysis.infoflow` — ``public < anonymized < phi`` — but
runs over the *legacy* data-flow graph from :mod:`.extract` instead of
a declared definition.  The contract: the labels inferred here are the
labels the emitted definition declares, so the definition-side
``infoflow_pass`` reaches the same fixpoint and finds nothing to flag.

Propagation rules (matching ``infoflow_pass`` exactly):

* a task's **in-label** is the join of every store it reads and every
  upstream task's out-label;
* a task's **out-label** is the join of its in-label and its own
  ``source=`` directive — unless the task is a **sanitizer**, which
  declassifies: out-label is capped at ``anonymized``;
* a store's **inferred label** is the join of its declared
  ``sensitivity=`` directive and every writer's out-label (labels are
  only ever *raised* — writing phi into a store declared public means
  the declaration was wrong, and we correct it rather than emit a
  definition UDC041 would reject).

The fixpoint is computed over tasks in deterministic (sorted) order
until stable; the DFG is finite and the lattice has height 3, so this
terminates in at most ``3 * |edges|`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .extract import FlowEdge, ProgramModel

__all__ = ["TaintResult", "infer_labels"]

_RANK = {"public": 0, "anonymized": 1, "phi": 2}
_BY_RANK = {rank: label for label, rank in _RANK.items()}


def _join(a: str, b: str) -> str:
    return _BY_RANK[max(_RANK[a], _RANK[b])]


@dataclass(frozen=True)
class TaintResult:
    """Fixpoint labels for every unit of the program.

    ``task_in``/``task_out`` are the per-task labels; ``store_label``
    is the (possibly raised) label each store must declare.
    ``raised`` lists stores whose inferred label exceeds their
    directive — a lint-style heads-up the CLI surfaces.
    """

    task_in: Dict[str, str]
    task_out: Dict[str, str]
    store_label: Dict[str, str]
    raised: Tuple[str, ...]


def infer_labels(model: ProgramModel) -> TaintResult:
    """Run the label fixpoint over the extracted data-flow graph."""
    declared = {
        name: (store.sensitivity or "public")
        for name, store in model.stores.items()
    }
    store_label = dict(declared)
    task_in = {task: "public" for task in model.tasks}
    task_out = {task: "public" for task in model.tasks}

    reads: Dict[str, Tuple[FlowEdge, ...]] = {t: () for t in model.tasks}
    preds: Dict[str, Tuple[str, ...]] = {t: () for t in model.tasks}
    writers: Dict[str, Tuple[str, ...]] = {s: () for s in model.stores}
    for edge in model.flows:
        if edge.kind == "read":
            reads[edge.dst] = reads[edge.dst] + (edge,)
        elif edge.kind == "flow":
            preds[edge.dst] = preds[edge.dst] + (edge.src,)
        elif edge.kind == "write":
            writers[edge.dst] = writers[edge.dst] + (edge.src,)

    changed = True
    while changed:
        changed = False
        for task in sorted(model.tasks):
            summary = model.functions[task]
            label = "public"
            for edge in reads[task]:
                label = _join(label, store_label[edge.src])
            for pred in preds[task]:
                label = _join(label, task_out[pred])
            if label != task_in[task]:
                task_in[task] = label
                changed = True
            out = label
            if summary.source_label is not None:
                out = _join(out, summary.source_label)
            if summary.sanitizer and _RANK[out] > _RANK["anonymized"]:
                out = "anonymized"
            if out != task_out[task]:
                task_out[task] = out
                changed = True
        for store in sorted(model.stores):
            label = declared[store]
            for writer in sorted(set(writers[store])):
                label = _join(label, task_out[writer])
            if label != store_label[store]:
                store_label[store] = label
                changed = True

    raised = tuple(sorted(
        name for name in model.stores
        if _RANK[store_label[name]] > _RANK[declared[name]]
    ))
    return TaintResult(
        task_in=task_in,
        task_out=task_out,
        store_label=store_label,
        raised=raised,
    )
