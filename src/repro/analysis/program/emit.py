"""Emission: turn a cut program into a UDC application + definition.

The output contract is the whole point of the pipeline: the emitted
definition must pass ``parse_definition(analyze=True)`` with **zero
findings** — errors *or* warnings — against the emitted app.  Every
choice below is made with a specific diagnostic in mind:

* module devices come from the (non-empty, cutter-guaranteed) candidate
  intersection — never UDC023;
* isolation is derived from the inferred in-label through the same
  clearance table ``infoflow_pass`` uses (phi → ``strong``,
  anonymized → ``weak``, public → none) — never UDC040;
* stores declare their *inferred* (possibly raised) labels, so no write
  ever downgrades — never UDC041;
* phi stores request ``encrypt`` (+ ``integrity``) protection — never
  UDC042;
* a sanitizer flag is dropped when the group's in-label is public (it
  would sanitize nothing) — never UDC043;
* store sizes were capped by the cutter at a single catalog device and
  replication stays 1 — never UDC020/UDC022;
* no goals, hedges, deadlines, caps, or cross-module consistency
  demands are emitted — never UDC010–UDC013/UDC015.

Emission also carries the *execution* half of compiling legacy code:
:func:`attach_functions` builds one composed callable per merged module
(members run in dependency order inside the module, wired through the
extraction-recorded argument bindings), and :func:`input_payload` maps
the legacy driver's parameters onto per-module runtime inputs, so the
auto-cut app runs end-to-end on :class:`~repro.core.runtime.UDCRuntime`
exactly like a hand-written one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.core.builder import define
from repro.hardware.devices import DeviceType

from .cutter import CutResult
from .extract import ProgramModel
from .taint import TaintResult

__all__ = ["EmitResult", "attach_functions", "emit_definition",
           "input_payload"]

#: inferred in-label -> isolation tier the definition demands; the
#: inverse of ``repro.analysis.infoflow.clearance_of``.
_ISOLATION_FOR_LABEL = {"phi": "strong", "anonymized": "weak"}

#: store label -> protection flags on the at-rest execenv aspect.
_PROTECTION_FOR_LABEL = {
    "phi": ("encrypt", "integrity"),
    "anonymized": ("integrity",),
}


@dataclass(frozen=True)
class EmitResult:
    """The compiled application: DAG + raw definition dict."""

    dag: ModuleDAG
    definition: Dict[str, Any]
    #: original unit -> emitted module name
    module_of: Dict[str, str]


def _pick_device(candidates: Tuple[str, ...]) -> str:
    """One concrete device for the module: the fastest candidate (the
    catalog's compute_rate order), name-sorted for determinism."""
    from repro.hardware.devices import DEFAULT_SPECS
    return max(
        sorted(candidates),
        key=lambda name: DEFAULT_SPECS[DeviceType(name)].compute_rate,
    )


def emit_definition(model: ProgramModel, taint: TaintResult,
                    cut: CutResult) -> EmitResult:
    """Build the ModuleDAG and definition for one cut program."""
    dag = ModuleDAG(name=f"{model.name}-auto")
    builder = define()
    module_of = dict(cut.assignment)

    # -- unit-level edges, aggregated per emitted module pair --------------
    crossing: Dict[Tuple[str, str], int] = {}
    outgoing: Dict[str, set] = {}
    for edge in model.flows:
        src, dst = module_of[edge.src], module_of[edge.dst]
        if src == dst:
            continue
        crossing[(src, dst)] = crossing.get((src, dst), 0) + edge.bytes
        outgoing.setdefault(edge.src, set()).add(dst)

    # -- modules -----------------------------------------------------------
    for group in cut.groups:
        if group.kind == "task":
            summaries = [model.functions[m] for m in group.members]
            label = taint.task_in[group.members[0]]
            candidates = set(summaries[0].devices)
            for summary in summaries[1:]:
                candidates &= set(summary.devices)
            devices = tuple(sorted(candidates))
            device = _pick_device(devices)
            parallelism = [s.max_parallelism for s in summaries
                           if s.max_parallelism is not None]
            boundary_out = [s.output_bytes for s in summaries
                            if outgoing.get(s.name)]
            dag.add_module(TaskModule(
                name=group.name,
                work=sum(s.effective_work for s in summaries),
                device_candidates=frozenset(DeviceType(d) for d in devices),
                output_bytes=max(boundary_out) if boundary_out
                else max(s.output_bytes for s in summaries),
                state_bytes=sum(s.state_bytes for s in summaries),
                max_parallelism=min(parallelism) if parallelism else None,
                sanitizer=any(s.sanitizer for s in summaries)
                and label != "public",
            ))
            aspect = builder.module(group.name)
            aspect.resource(device=device, amount=1.0)
            isolation = _ISOLATION_FOR_LABEL.get(label)
            if isolation is not None:
                aspect.execenv(isolation=isolation)
        else:
            stores = [model.stores[m] for m in group.members]
            label = taint.store_label[group.members[0]]
            hot = stores[0].hot
            dag.add_module(DataModule(
                name=group.name,
                size_gb=sum(s.size_gb for s in stores),
                record_bytes=max(s.record_bytes for s in stores),
                hot=hot,
                sensitivity=label if label != "public" else None,
            ))
            aspect = builder.module(group.name)
            aspect.resource(media="dram" if hot else "ssd")
            aspect.distributed(replication=1)
            protection = _PROTECTION_FOR_LABEL.get(label)
            if protection is not None:
                aspect.execenv(protection=list(protection))

    # -- edges (+ read affinities, mirroring AppBuilder.reads) -------------
    for (src, dst) in sorted(crossing):
        dag.add_edge(src, dst, bytes_transferred=crossing[(src, dst)])
    for edge in model.flows:
        if edge.kind == "read":
            task_mod = module_of[edge.dst]
            store_mod = module_of[edge.src]
            key = (task_mod, store_mod)
            if dag.affinities.get(key, 0) < edge.bytes:
                dag.affine(task_mod, store_mod, edge.bytes)

    dag.validate()
    return EmitResult(dag=dag, definition=builder.to_dict(),
                      module_of=module_of)


# ------------------------------------------------------------------ execution


def _resolve(binding, *, member_results: Dict[str, Any],
             group_of: Dict[str, str], merged: Dict[str, bool],
             namespace: Dict[str, Any], ctx: Dict[str, Any]):
    if binding.kind == "const":
        return binding.ref
    if binding.kind == "store":
        return namespace[binding.ref]
    if binding.kind == "input":
        payload = ctx.get("input") or {}
        return payload.get(str(binding.ref))
    if binding.kind == "task":
        producer = str(binding.ref)
        if producer in member_results:
            return member_results[producer]
        upstream = ctx.get(group_of[producer])
        if merged[group_of[producer]] and isinstance(upstream, dict):
            return upstream.get(producer)
        return upstream
    raise ValueError(f"unknown binding kind {binding.kind!r}")


def attach_functions(model: ProgramModel, cut: CutResult,
                     emitted: EmitResult,
                     namespace: Dict[str, Any]) -> ModuleDAG:
    """Give every emitted task module a composed callable.

    ``namespace`` is the executed legacy module's global dict (the
    *caller* executes the file — the analyzer itself never does); the
    callables close over it, so stores stay shared mutable state exactly
    as in the legacy program.  A merged module returns a dict keyed by
    member name; a singleton returns the member's raw result — the shape
    downstream bindings expect.
    """
    merged = {g.name: len(g.members) > 1 for g in cut.groups}
    group_of = emitted.module_of

    for group in cut.groups:
        if group.kind != "task":
            continue
        members = group.members

        def composed(ctx: Dict[str, Any], _members=members) -> Any:
            member_results: Dict[str, Any] = {}
            for member in _members:
                fn = namespace[member]
                kwargs = {
                    b.param: _resolve(
                        b, member_results=member_results,
                        group_of=group_of, merged=merged,
                        namespace=namespace, ctx=ctx)
                    for b in model.bindings.get(member, ())
                }
                member_results[member] = fn(**kwargs)
            if len(_members) > 1:
                return dict(member_results)
            return member_results[_members[0]]

        emitted.dag.task(group.name).fn = composed
    return emitted.dag


def input_payload(model: ProgramModel, emitted: EmitResult,
                  **driver_args: Any) -> Dict[str, Dict[str, Any]]:
    """Per-module runtime inputs from the legacy driver's arguments.

    The runtime hands each task module ``inputs[module_name]`` as
    ``ctx["input"]``; a module needs the driver parameters its members
    bind.  Unknown argument names raise — they would silently become
    ``None`` inside the composed callables otherwise.
    """
    unknown = set(driver_args) - set(model.input_params)
    if unknown:
        raise ValueError(
            f"unknown driver argument(s) {sorted(unknown)}; "
            f"the driver(s) take {list(model.input_params)}")
    payload: Dict[str, Dict[str, Any]] = {}
    for task, bindings in model.bindings.items():
        module = emitted.module_of[task]
        for binding in bindings:
            if binding.kind != "input":
                continue
            if str(binding.ref) in driver_args:
                payload.setdefault(module, {})[str(binding.ref)] = \
                    driver_args[str(binding.ref)]
    return payload
