"""Whole-program analyzer + module-cutter (paper §4, claim C11).

*"Legacy programs can be semi-automatically cut into modules minimizing
cross-segment dependencies."*  This package is that compiler, end to
end::

    legacy .py source
      └─ extract.py   AST → stores, functions, roles, data-flow graph
      └─ taint.py     fixpoint sensitivity labels (public<anonymized<phi)
      └─ cutter.py    deterministic min-cut search over the DFG
      └─ emit.py      ModuleDAG + definition via DefinitionBuilder

:func:`modularize` runs the four layers and **self-checks** the result
through the PR 5 analyzer: the emitted definition must produce zero
findings (errors *or* warnings) under
:func:`repro.analysis.analyze_definition` — the pipeline refuses to
hand over anything ``udc lint`` would flag.  The whole path is pure and
deterministic: same source + same seed → byte-identical report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.analysis import analyze_definition

from .cutter import DEFAULT_ALPHA, CutGroup, CutResult, cut_program
from .emit import EmitResult, attach_functions, emit_definition, input_payload
from .extract import (
    ProgramAnalysisError,
    ProgramModel,
    extract_program,
)
from .taint import TaintResult, infer_labels

__all__ = [
    "CutGroup",
    "CutResult",
    "EmitResult",
    "ModularizeResult",
    "ProgramAnalysisError",
    "ProgramModel",
    "TaintResult",
    "attach_functions",
    "cut_program",
    "emit_definition",
    "extract_program",
    "infer_labels",
    "input_payload",
    "modularize",
]


@dataclass(frozen=True)
class ModularizeResult:
    """Everything the pipeline produced for one legacy source."""

    model: ProgramModel
    taint: TaintResult
    cut: CutResult
    emitted: EmitResult
    seed: int
    moves: int
    alpha: float

    def report_dict(self) -> Dict[str, Any]:
        """The JSON-stable report (``udc modularize --json`` body)."""
        from repro.appmodel.ir import compile_dag

        return {
            "app": compile_dag(self.emitted.dag).to_dict(),
            "definition": self.emitted.definition,
            "report": {
                "source": self.model.name,
                "inputs": list(self.model.input_params),
                "roles": {
                    "drivers": list(self.model.drivers),
                    "tasks": list(self.model.tasks),
                    "helpers": list(self.model.helpers),
                    "dead": list(self.model.dead),
                    "stores": sorted(self.model.stores),
                },
                "labels": {
                    "task_in": {t: self.taint.task_in[t]
                                for t in sorted(self.taint.task_in)},
                    "task_out": {t: self.taint.task_out[t]
                                 for t in sorted(self.taint.task_out)},
                    "stores": {s: self.taint.store_label[s]
                               for s in sorted(self.taint.store_label)},
                    "raised": list(self.taint.raised),
                },
                "cut": {
                    "seed": self.seed,
                    "moves": self.moves,
                    "alpha": self.alpha,
                    "modules": [
                        {"name": g.name, "kind": g.kind,
                         "members": list(g.members)}
                        for g in self.cut.groups
                    ],
                    "cross_module_bytes": self.cut.cross_bytes,
                    "internalized_bytes": self.cut.internal_bytes,
                    "parallel_loss": self.cut.parallel_loss,
                    "merges": self.cut.merges,
                    "moves_taken": self.cut.moves_taken,
                },
                "lint": {"findings": 0},
            },
        }

    def report_json(self) -> str:
        """Byte-deterministic JSON: sorted keys, no float repr drift."""
        return json.dumps(self.report_dict(), sort_keys=True,
                          separators=(",", ":"))


def modularize(source: str, *, name: str = "legacy-app", seed: int = 0,
               moves: int = 64, alpha: float = DEFAULT_ALPHA,
               datacenter: Optional[Any] = None) -> ModularizeResult:
    """Compile one legacy Python source into a lint-clean UDC definition.

    Raises :class:`ProgramAnalysisError` when the source falls outside
    the supported subset — or, defensively, if the emitted definition
    somehow fails the self-check (which would be a bug here, not in the
    user's program).
    """
    model = extract_program(source, name=name)
    taint = infer_labels(model)
    cut = cut_program(model, taint, seed=seed, moves=moves, alpha=alpha)
    emitted = emit_definition(model, taint, cut)

    report = analyze_definition(emitted.definition, app=emitted.dag,
                                datacenter=datacenter)
    if len(report) > 0:
        lines = "; ".join(d.format() for d in report.diagnostics)
        raise ProgramAnalysisError(
            f"internal error: emitted definition failed its own lint "
            f"({lines})")
    return ModularizeResult(model=model, taint=taint, cut=cut,
                            emitted=emitted, seed=seed, moves=moves,
                            alpha=alpha)
