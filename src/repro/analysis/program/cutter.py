"""Module-cutter: partition the extracted program into UDC modules.

This is the paper's §4 claim made concrete — *"a static analyzer can
infer dependencies and cut a program into segments"* minimizing
cross-segment dependencies.  The search is deterministic:

1. **Greedy agglomerative** — every task and store starts in its own
   group; candidate merges are the inter-group data-flow edges, visited
   heaviest-bytes first (ties broken lexicographically); a merge is
   taken when it is *legal* and strictly lowers the objective.
2. **Local-move refinement** — a bounded number of seeded random moves
   (one unit to an adjacent group, or back out to a singleton), drawn
   from the ``RngRegistry`` stream ``"modularize"``; a move is kept only
   when legal and strictly improving, so refinement can only lower the
   objective and the result is reproducible from the root seed.

**Legality** (the constraints a group must satisfy to become one module):

* *kind homogeneity* — tasks and stores never share a module (a module
  is either a TaskModule or a DataModule);
* *label purity* — all tasks in a group carry the same inferred
  in-label (no label mixing inside a module: one module gets exactly one
  isolation level, and the infoflow pass audits per-module clearances);
  sanitizers may merge *upstream* (same in-label) but never with their
  declassified consumers;
* *device intersection* — a merged task group must keep a non-empty
  device-candidate intersection (it becomes one module on one device);
* *catalog caps* — a merged store group must still fit a single device
  of its media class (DRAM for hot, SSD otherwise) at replication 1;
  same-media, same-label stores only;
* *DAG-ness* — contracting the groups must leave the task-flow graph
  acyclic (``ModuleDAG.validate`` rejects direct task-task cycles).

**Objective** = cross-group traffic bytes + ``alpha`` × parallel-loss,
where a group's parallel-loss is the work it serializes: the sum of
member work minus the longest internal dependency chain.  Merging a
pipeline stage into its sole consumer costs nothing; merging two
independent branches pays for the parallelism it destroys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.simulator.rng import RngRegistry

from .extract import ProgramModel
from .taint import TaintResult

__all__ = ["CutGroup", "CutResult", "cut_program"]

#: bytes of cross-module traffic one serialized work-unit is "worth";
#: the penalty that keeps the cutter from collapsing parallel branches.
DEFAULT_ALPHA = float(1 << 20)

#: single-device capacity (GB) per store media class, from the catalog
#: (`DEFAULT_SPECS`): a DRAM sled holds 512 GB, an NVMe shelf 8192 GB.
_MEDIA_CAP_GB = {"dram": 512.0, "ssd": 8192.0}


@dataclass(frozen=True)
class CutGroup:
    """One module of the cut: a set of same-kind program units."""

    name: str                 # members joined with "+" in dependency order
    kind: str                 # "task" | "store"
    members: Tuple[str, ...]  # dependency (topo) order for tasks


@dataclass(frozen=True)
class CutResult:
    """The final partition plus the numbers the report prints."""

    groups: Tuple[CutGroup, ...]
    assignment: Dict[str, str]      # unit -> group name
    cross_bytes: int                # objective term 1 at the final cut
    internal_bytes: int             # traffic the cut internalized
    parallel_loss: float            # objective term 2 (work units)
    merges: int                     # greedy merges taken
    moves_tried: int                # refinement proposals drawn
    moves_taken: int                # refinement proposals kept

    def group_of(self, unit: str) -> CutGroup:
        name = self.assignment[unit]
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(unit)


class _State:
    """Mutable partition state shared by both search phases."""

    def __init__(self, model: ProgramModel, taint: TaintResult,
                 alpha: float):
        self.model = model
        self.taint = taint
        self.alpha = alpha
        self.groups: Dict[str, FrozenSet[str]] = {
            unit: frozenset([unit])
            for unit in list(model.tasks) + sorted(model.stores)
        }
        self.owner: Dict[str, str] = {u: u for u in self.groups}
        # unit-level undirected weights, and directed task-flow adjacency
        self.weights: Dict[Tuple[str, str], int] = {}
        self.flow_succ: Dict[str, set] = {t: set() for t in model.tasks}
        for edge in model.flows:
            key = tuple(sorted((edge.src, edge.dst)))
            self.weights[key] = self.weights.get(key, 0) + edge.bytes
            if edge.kind == "flow":
                self.flow_succ[edge.src].add(edge.dst)

    # -- bookkeeping -------------------------------------------------------

    def kind_of(self, unit: str) -> str:
        return "store" if unit in self.model.stores else "task"

    def label_of(self, unit: str) -> str:
        if unit in self.model.stores:
            return self.taint.store_label[unit]
        return self.taint.task_in[unit]

    def cross_bytes(self) -> int:
        total = 0
        for (a, b), nbytes in self.weights.items():
            if self.owner[a] != self.owner[b]:
                total += nbytes
        return total

    def internal_bytes(self) -> int:
        return sum(self.weights.values()) - self.cross_bytes()

    # -- objective ---------------------------------------------------------

    def _group_parallel_loss(self, members: FrozenSet[str]) -> float:
        tasks = [m for m in members if self.kind_of(m) == "task"]
        if len(tasks) <= 1:
            return 0.0
        work = {t: self.model.functions[t].effective_work for t in tasks}
        total = sum(work.values())
        member_set = set(tasks)
        longest: Dict[str, float] = {}

        def chain(node: str) -> float:
            if node in longest:
                return longest[node]
            best = 0.0
            for succ in self.flow_succ[node]:
                if succ in member_set:
                    best = max(best, chain(succ))
            longest[node] = work[node] + best
            return longest[node]

        critical = max(chain(t) for t in tasks)
        return total - critical

    def parallel_loss(self) -> float:
        seen = set()
        total = 0.0
        for unit in sorted(self.owner):
            name = self.owner[unit]
            if name in seen:
                continue
            seen.add(name)
            total += self._group_parallel_loss(self.groups[name])
        return total

    def score(self) -> float:
        return self.cross_bytes() + self.alpha * self.parallel_loss()

    # -- legality ----------------------------------------------------------

    def _legal_group(self, members: FrozenSet[str]) -> bool:
        kinds = {self.kind_of(m) for m in members}
        if len(kinds) != 1:
            return False
        labels = {self.label_of(m) for m in members}
        if len(labels) != 1:
            return False
        if kinds == {"task"}:
            candidates: Optional[set] = None
            for member in members:
                devs = set(self.model.functions[member].devices)
                candidates = devs if candidates is None else candidates & devs
            if not candidates:
                return False
        else:
            hot = {self.model.stores[m].hot for m in members}
            if len(hot) != 1:
                return False
            media = "dram" if hot.pop() else "ssd"
            size = sum(self.model.stores[m].size_gb for m in members)
            if size > _MEDIA_CAP_GB[media]:
                return False
        return True

    def _acyclic_with(self, trial_owner: Dict[str, str]) -> bool:
        """Would the contracted task-flow graph stay a DAG?"""
        adjacency: Dict[str, set] = {}
        for src, succs in self.flow_succ.items():
            a = trial_owner[src]
            for dst in succs:
                b = trial_owner[dst]
                if a != b:
                    adjacency.setdefault(a, set()).add(b)
        state: Dict[str, int] = {}

        def visit(node: str) -> bool:
            state[node] = 1
            for nxt in sorted(adjacency.get(node, ())):
                if state.get(nxt) == 1:
                    return False
                if state.get(nxt) is None and not visit(nxt):
                    return False
            state[node] = 2
            return True

        return all(
            visit(node) for node in sorted(adjacency) if state.get(node) is None
        )

    # -- mutations ---------------------------------------------------------

    def try_merge(self, ga: str, gb: str) -> bool:
        """Merge groups ``ga``/``gb`` if legal and strictly improving."""
        if ga == gb:
            return False
        merged = self.groups[ga] | self.groups[gb]
        if not self._legal_group(merged):
            return False
        new_name = min(ga, gb)
        trial = {
            u: (new_name if g in (ga, gb) else g)
            for u, g in self.owner.items()
        }
        if not self._acyclic_with(trial):
            return False
        before = self.score()
        old_groups = dict(self.groups)
        old_owner = dict(self.owner)
        for stale in (ga, gb):
            del self.groups[stale]
        self.groups[new_name] = merged
        self.owner = trial
        if self.score() < before:
            return True
        self.groups = old_groups
        self.owner = old_owner
        return False

    def try_move(self, unit: str, target: str) -> bool:
        """Move ``unit`` into group ``target`` ("" = break out to a
        singleton) if legal and strictly improving."""
        source = self.owner[unit]
        if target == source or (target == "" and len(self.groups[source]) == 1):
            return False
        before = self.score()
        old_groups = dict(self.groups)
        old_owner = dict(self.owner)

        remaining = self.groups[source] - {unit}
        del self.groups[source]
        if remaining:
            keep = min(remaining)
            self.groups[keep] = remaining
            for member in remaining:
                self.owner[member] = keep
        if target == "":
            self.groups[unit] = frozenset([unit])
            self.owner[unit] = unit
        else:
            if target not in self.groups:  # renamed by the removal above
                self.groups, self.owner = old_groups, old_owner
                return False
            joined = self.groups[target] | {unit}
            if not self._legal_group(joined):
                self.groups, self.owner = old_groups, old_owner
                return False
            new_name = min(joined)
            del self.groups[target]
            self.groups[new_name] = joined
            for member in joined:
                self.owner[member] = new_name
        if not self._acyclic_with(self.owner) or self.score() >= before:
            self.groups, self.owner = old_groups, old_owner
            return False
        return True


def _topo_order(state: _State, members: FrozenSet[str]) -> Tuple[str, ...]:
    """Members in dependency order (stable: name-sorted within ranks)."""
    tasks = sorted(members)
    member_set = set(tasks)
    indegree = {t: 0 for t in tasks}
    for src in tasks:
        for dst in state.flow_succ.get(src, ()):
            if dst in member_set:
                indegree[dst] += 1
    order: List[str] = []
    ready = sorted(t for t in tasks if indegree[t] == 0)
    while ready:
        node = ready.pop(0)
        order.append(node)
        for dst in sorted(state.flow_succ.get(node, ())):
            if dst in member_set:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    ready.append(dst)
        ready.sort()
    return tuple(order) if len(order) == len(tasks) else tuple(tasks)


def cut_program(model: ProgramModel, taint: TaintResult, *,
                seed: int = 0, moves: int = 64,
                alpha: float = DEFAULT_ALPHA) -> CutResult:
    """Run the two-phase deterministic search; see the module docstring."""
    state = _State(model, taint, alpha)

    # Phase 1: greedy agglomerative along data-flow edges.
    merges = 0
    improved = True
    while improved:
        improved = False
        candidates = sorted(
            ((nbytes, a, b) for (a, b), nbytes in state.weights.items()),
            key=lambda item: (-item[0], item[1], item[2]),
        )
        for _nbytes, a, b in candidates:
            ga, gb = state.owner[a], state.owner[b]
            if ga != gb and state.try_merge(ga, gb):
                merges += 1
                improved = True
                break  # re-rank edges against the new partition

    # Phase 2: seeded local-move refinement.
    rng = RngRegistry(seed).stream("modularize")
    units = sorted(state.owner)
    moves_taken = 0
    for _ in range(max(0, moves)):
        unit = units[rng.randrange(len(units))]
        neighbor_groups = sorted({
            state.owner[other]
            for (x, y) in state.weights
            for other in ((y,) if x == unit else (x,) if y == unit else ())
        } - {state.owner[unit]})
        targets = neighbor_groups + [""]
        target = targets[rng.randrange(len(targets))]
        if state.try_move(unit, target):
            moves_taken += 1

    groups: List[CutGroup] = []
    assignment: Dict[str, str] = {}
    for key in sorted(state.groups):
        members = state.groups[key]
        kind = state.kind_of(next(iter(members)))
        ordered = _topo_order(state, members) if kind == "task" \
            else tuple(sorted(members))
        name = "+".join(ordered)
        groups.append(CutGroup(name=name, kind=kind, members=ordered))
        for member in members:
            assignment[member] = name
    groups.sort(key=lambda g: (g.kind, g.name))

    return CutResult(
        groups=tuple(groups),
        assignment=assignment,
        cross_bytes=state.cross_bytes(),
        internal_bytes=state.internal_bytes(),
        parallel_loss=state.parallel_loss(),
        merges=merges,
        moves_tried=max(0, moves),
        moves_taken=moves_taken,
    )
