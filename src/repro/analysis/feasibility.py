"""Feasibility pass (``UDC020``–``UDC026``).

The definition against the datacenter catalog, before any placement: is
there *any* assignment of modules to devices that could satisfy the
declared resource aspects?  These checks mirror the scheduler's runtime
errors (:class:`~repro.core.scheduler.SchedulerError` for a device
outside the candidate set, an unallocatable amount, an exhausted pool)
but fire at admission, where the user can still fix the definition.

Goal-directed modules (``fastest`` / ``cheapest`` with no pinned device
or media) are deliberately skipped by the single-type checks — the
provider may satisfy them anywhere — and excluded from per-pool
aggregate demand for the same reason.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.core.spec import UserDefinition
from repro.hardware.devices import DeviceType
from repro.hardware.pools import is_amount_valid
from repro.hardware.topology import Datacenter
from repro.service.tenants import TenantQuota

__all__ = ["feasibility_pass"]


def feasibility_pass(
    definition: UserDefinition,
    app: Optional[ModuleDAG] = None,
    datacenter: Optional[Datacenter] = None,
    quota: Optional[TenantQuota] = None,
    in_flight: int = 0,
    submitted: int = 0,
) -> List[Diagnostic]:
    """Static placement feasibility of one definition.

    ``quota`` / ``in_flight`` / ``submitted`` let the serving layer lint
    a submission against the tenant's admission state (UDC026); the CLI
    leaves them unset.
    """
    findings: List[Diagnostic] = []

    # UDC026 — the tenant's quota cannot admit one more submission.
    if quota is not None:
        if quota.max_submissions is not None \
                and submitted >= quota.max_submissions:
            findings.append(Diagnostic(
                code="UDC026", severity=Severity.ERROR, module="*",
                message=f"lifetime submission quota "
                        f"{quota.max_submissions} already reached",
                hint="raise the tenant's max_submissions or stop submitting",
            ))
        if quota.max_in_flight is not None and in_flight >= quota.max_in_flight:
            findings.append(Diagnostic(
                code="UDC026", severity=Severity.ERROR, module="*",
                message=f"{in_flight} submission(s) already in flight "
                        f"(quota {quota.max_in_flight})",
                hint="drain in-flight work or raise max_in_flight",
            ))

    pools = datacenter.pools.pools if datacenter is not None else None
    dc_spec = datacenter.spec if datacenter is not None else None

    #: device type -> summed demand pinned to that type by the definition
    demand: Dict[DeviceType, float] = {}
    #: device type -> (module, share) contributions, for the UDC022 text
    contributors: Dict[DeviceType, List[str]] = {}

    def add_demand(module: str, device_type: DeviceType, amount: float):
        demand[device_type] = demand.get(device_type, 0.0) + amount
        contributors.setdefault(device_type, []).append(module)

    def check_type_exists(module: str, aspect: str,
                          device_type: DeviceType) -> bool:
        """UDC021 — the catalog has no pool of this type."""
        if pools is None or device_type in pools:
            return True
        findings.append(Diagnostic(
            code="UDC021", severity=Severity.ERROR, module=module,
            aspect=aspect,
            message=f"requests {device_type.value}, but this datacenter "
                    f"has no {device_type.value} pool",
            hint=f"add {device_type.value} sleds to the datacenter spec "
                 f"or request a different type",
        ))
        return False

    def spec_of(device_type: DeviceType):
        if dc_spec is not None:
            return dc_spec.spec_for(device_type)
        from repro.hardware.devices import DEFAULT_SPECS
        return DEFAULT_SPECS[device_type]

    def check_single_device(module: str, aspect: str,
                            device_type: DeviceType, amount: float,
                            what: str):
        """UDC020 — one device must hold ``amount`` whole.

        Applies where the scheduler does *not* shard: a data replica and
        a task's working memory each land on a single device.  Task
        compute amounts split across devices, so they are checked against
        pool capacity (UDC022) instead.
        """
        spec = spec_of(device_type)
        if is_amount_valid(spec, amount):
            return
        if amount > spec.capacity:
            findings.append(Diagnostic(
                code="UDC020", severity=Severity.ERROR, module=module,
                aspect=aspect,
                message=f"{what} of {amount:g} {device_type.unit} exceeds "
                        f"a single {device_type.value} device's capacity "
                        f"({spec.capacity:g} {device_type.unit})",
                hint=f"shard the module or request at most "
                     f"{spec.capacity:g} {device_type.unit}",
            ))
        else:
            check_allocatable(module, aspect, device_type, amount, what)

    def check_allocatable(module: str, aspect: str,
                          device_type: DeviceType, amount: float,
                          what: str) -> bool:
        """UDC024 — the request must be a positive, finite amount."""
        if amount > 0 and math.isfinite(amount):
            return True
        findings.append(Diagnostic(
            code="UDC024", severity=Severity.ERROR, module=module,
            aspect=aspect,
            message=f"{what} of {amount!r} {device_type.unit} is not "
                    f"an allocatable {device_type.value} request",
            hint="request a positive, finite amount",
        ))
        return False

    for name in sorted(definition.bundles):
        bundle = definition.bundle_for(name)
        resource = bundle.resource
        if resource is None:
            continue
        module = app.modules.get(name) if app is not None else None

        # -- task-side resource demands ----------------------------------
        if resource.device is not None:
            if check_type_exists(name, "resource", resource.device):
                amount = resource.amount if resource.amount is not None else 1.0
                if check_allocatable(name, "resource", resource.device,
                                     amount, "amount"):
                    add_demand(name, resource.device, amount)
            # UDC023 — the declared device must be one the developer said
            # the code can run on.
            if isinstance(module, TaskModule) \
                    and resource.device not in module.device_candidates:
                candidates = ", ".join(
                    sorted(d.value for d in module.device_candidates))
                findings.append(Diagnostic(
                    code="UDC023", severity=Severity.ERROR, module=name,
                    aspect="resource",
                    message=f"declares device {resource.device.value}, but "
                            f"the task's candidates are [{candidates}]",
                    hint=f"pick one of [{candidates}] or extend the "
                         f"task's device_candidates",
                ))

        if resource.mem_gb > 0:
            if pools is not None and DeviceType.DRAM not in pools:
                # The runtime silently skips the memory grant in this
                # case — surface it, but it does not gate admission.
                findings.append(Diagnostic(
                    code="UDC021", severity=Severity.WARNING, module=name,
                    aspect="resource",
                    message=f"requests {resource.mem_gb:g} GB of working "
                            f"memory, but this datacenter has no dram "
                            f"pool (the grant would be skipped)",
                    hint="add dram sleds to the datacenter spec or drop "
                         "mem_gb",
                ))
            else:
                check_single_device(name, "resource", DeviceType.DRAM,
                                    resource.mem_gb, "working memory")
                add_demand(name, DeviceType.DRAM, resource.mem_gb)

        # -- data-side media demands --------------------------------------
        if resource.media is not None and isinstance(module, DataModule):
            if check_type_exists(name, "resource", resource.media):
                check_single_device(name, "resource", resource.media,
                                    module.size_gb, "data size")
                dist = bundle.distributed
                replicas = (dist.replication.factor
                            if dist is not None and dist.replication is not None
                            else 1)
                add_demand(name, resource.media,
                           module.size_gb * max(replicas, 1))

    # UDC022 — summed pinned demand vs each pool's total capacity.
    if pools is not None:
        for device_type in sorted(demand, key=lambda d: d.value):
            pool = pools.get(device_type)
            if pool is None:
                continue  # UDC021 already reported per module
            total = sum(d.spec.capacity for d in pool.devices)
            if demand[device_type] > total:
                who = ", ".join(sorted(set(contributors[device_type])))
                findings.append(Diagnostic(
                    code="UDC022", severity=Severity.ERROR, module="*",
                    message=f"aggregate {device_type.value} demand "
                            f"{demand[device_type]:g} {device_type.unit} "
                            f"(from {who}) exceeds pool capacity "
                            f"{total:g} {device_type.unit}",
                    hint=f"grow the {device_type.value} pool or shrink "
                         f"the declared demand",
                ))

    # UDC025 — a co-location group needs at least one pooled device type
    # every member can run on; otherwise no rack can host the group.
    if app is not None and pools is not None:
        for group in app.merged_colocation_groups():
            members = sorted(group)
            tasks = [app.modules[n] for n in members
                     if isinstance(app.modules.get(n), TaskModule)]
            if len(tasks) < 2:
                continue
            shared = frozenset.intersection(
                *(t.device_candidates for t in tasks))
            if shared and not any(t in pools for t in shared):
                types = ", ".join(sorted(t.value for t in shared))
                findings.append(Diagnostic(
                    code="UDC025", severity=Severity.ERROR,
                    module=members[0],
                    message=f"co-location group [{', '.join(members)}] "
                            f"shares only [{types}], none of which this "
                            f"datacenter pools",
                    hint=f"add a [{types}] pool or relax the co-location",
                ))

    return findings
