"""DAG structural pass (``UDC030``–``UDC034``).

Shape problems in the application graph itself — cycles among tasks,
modules nothing connects to, edges naming modules that do not exist.
:meth:`ModuleDAG.validate` *raises* on the worst of these at build time;
the analyzer re-derives them as diagnostics so ``udc lint`` can report
every problem in one run instead of dying on the first, and so apps
built by hand (dicts, IR round-trips) get the same scrutiny as apps
built through :class:`AppBuilder`.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule

__all__ = ["structure_pass"]


def structure_pass(app: ModuleDAG) -> List[Diagnostic]:
    """Structural checks over the application graph; never raises."""
    findings: List[Diagnostic] = []

    # UDC033 — edges whose endpoints the app does not define.  Such edges
    # are excluded from every later check (they have no modules to walk).
    known_edges = []
    for edge in app.edges:
        missing = sorted(
            end for end in (edge.src, edge.dst) if end not in app.modules
        )
        if missing:
            for end in missing:
                findings.append(Diagnostic(
                    code="UDC033", severity=Severity.ERROR, module=end,
                    message=f"edge {edge.src} -> {edge.dst} references "
                            f"{end!r}, which the application does not define",
                    hint=f"add a module named {end!r} or remove the edge",
                ))
            continue
        known_edges.append(edge)

    # UDC034 — self-loops: a module cannot depend on its own output.
    for edge in known_edges:
        if edge.src == edge.dst:
            findings.append(Diagnostic(
                code="UDC034", severity=Severity.ERROR, module=edge.src,
                message=f"module {edge.src!r} has a self-loop edge",
                hint="remove the edge; a module cannot precede itself",
            ))

    # UDC030 — cycles among task modules.  Cycles *through data* are
    # legal (A4 writes S1, A3 reads S1 models successive runs), so only
    # direct task->task edges enter the cycle graph — the same rule
    # ModuleDAG.validate enforces.
    task_graph = nx.DiGraph()
    for module in app.modules.values():
        if isinstance(module, TaskModule):
            task_graph.add_node(module.name)
    for edge in known_edges:
        if edge.src != edge.dst \
                and isinstance(app.modules[edge.src], TaskModule) \
                and isinstance(app.modules[edge.dst], TaskModule):
            task_graph.add_edge(edge.src, edge.dst)
    cycles = sorted(
        (sorted(c) for c in nx.simple_cycles(task_graph)),
        key=lambda c: (len(c), c),
    )
    for cycle in cycles:
        findings.append(Diagnostic(
            code="UDC030", severity=Severity.ERROR, module=cycle[0],
            message=f"task cycle: {' -> '.join(cycle + [cycle[0]])}",
            hint="break the cycle, or route the feedback through a data "
                 "module to model successive runs",
        ))

    # UDC031 / UDC032 — modules no edge touches.  A disconnected task
    # will still be scheduled (and billed); an untouched data module
    # will still be replicated and stored.  Both are almost certainly
    # authoring mistakes, but neither breaks a run: warnings.
    touched = set()
    for edge in known_edges:
        touched.add(edge.src)
        touched.add(edge.dst)
    for task, data in app.affinities:
        touched.add(task)
        touched.add(data)
    for name in sorted(app.modules):
        if name in touched:
            continue
        module = app.modules[name]
        if isinstance(module, TaskModule):
            findings.append(Diagnostic(
                code="UDC031", severity=Severity.WARNING, module=name,
                message=f"task {name!r} has no edges; it runs detached "
                        f"from the rest of the application",
                hint="connect it to the DAG or remove it",
            ))
        elif isinstance(module, DataModule):
            findings.append(Diagnostic(
                code="UDC032", severity=Severity.WARNING, module=name,
                message=f"data module {name!r} is never read or written",
                hint="add a read/write edge or drop the module (it still "
                     "costs storage and replication)",
            ))

    return findings
