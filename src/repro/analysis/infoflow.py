"""Information-flow pass (``UDC040``–``UDC043``).

A small sensitivity lattice, ``public < anonymized < phi``, over the
medical scenario of Fig. 2 / Table 1: patient records (S1-S3) are PHI,
the anonymized research store (S4) is not, and the only legal path from
one to the other is through B1's consent-filter/anonymize step.

* **data modules** carry a label (:attr:`DataModule.sensitivity`);
* **task modules** derive a *clearance* from their exec-env aspect — an
  environment strong enough for PHI (``STRONG``/``STRONGEST``: enclaves,
  single-tenant VMs) clears ``phi``, a shared/weak one only
  ``anonymized``, no isolation at all only ``public``;
* labels propagate along DAG edges (reads join labels upward, direct
  task→task edges carry the producer's label);
* **declassification** is only legal through a task flagged as a
  sanitizer (:attr:`TaskModule.sanitizer`), which caps its output label
  at ``anonymized``.

Violations: a task receiving data above its clearance (UDC040), a write
that would silently downgrade a label without a sanitizer (UDC041), PHI
at rest without encryption (UDC042), and a sanitizer that sanitizes
nothing (UDC043).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.core.spec import UserDefinition
from repro.execenv.isolation import IsolationLevel

__all__ = ["Sensitivity", "clearance_of", "infoflow_pass"]


class Sensitivity(enum.Enum):
    """The data-sensitivity lattice: ``public < anonymized < phi``."""

    PUBLIC = "public"
    ANONYMIZED = "anonymized"
    PHI = "phi"

    @property
    def rank(self) -> int:
        return _SENSITIVITY_RANK[self]

    @classmethod
    def from_label(cls, label: Optional[str]) -> "Sensitivity":
        """Unlabeled data is public — labels are opt-in."""
        return cls(label) if label is not None else cls.PUBLIC


_SENSITIVITY_RANK = {
    Sensitivity.PUBLIC: 0,
    Sensitivity.ANONYMIZED: 1,
    Sensitivity.PHI: 2,
}


def _join(a: Sensitivity, b: Sensitivity) -> Sensitivity:
    return a if a.rank >= b.rank else b


def clearance_of(definition: UserDefinition, name: str) -> Sensitivity:
    """The sensitivity a task's execution environment may handle.

    Strong isolation (enclaves, single-tenant VMs — ``STRONG`` and up)
    clears PHI; some isolation (``WEAK``/``MEDIUM``) clears anonymized
    data; a module with no isolation demand at all only public data.
    """
    execenv = definition.bundle_for(name).execenv
    level = execenv.effective_isolation if execenv is not None else None
    if level is None or level == IsolationLevel.NONE:
        return Sensitivity.PUBLIC
    if level.at_least(IsolationLevel.STRONG):
        return Sensitivity.PHI
    return Sensitivity.ANONYMIZED


def infoflow_pass(definition: UserDefinition,
                  app: ModuleDAG) -> List[Diagnostic]:
    """Label-propagation checks; needs the app (labels live on modules)."""
    findings: List[Diagnostic] = []

    data_label: Dict[str, Sensitivity] = {
        m.name: Sensitivity.from_label(m.sensitivity)
        for m in app.data_modules
    }
    tasks = {t.name for t in app.tasks}

    # UDC042 — PHI at rest without encryption.  The paper's §3.3 lets
    # data modules demand protection "when these data leave the execution
    # environment"; for PHI that is not optional.
    for name in sorted(data_label):
        if data_label[name] is not Sensitivity.PHI:
            continue
        execenv = definition.bundle_for(name).execenv
        if execenv is None or not execenv.protection.encrypt:
            findings.append(Diagnostic(
                code="UDC042", severity=Severity.ERROR, module=name,
                aspect="execenv",
                message=f"data module {name!r} is labeled phi but its "
                        f"protection policy does not request encryption",
                hint="set protection {'encrypt': true} on the module's "
                     "execenv aspect",
            ))

    # Propagate labels to a fixpoint.  A topological walk would do on a
    # DAG, but the structural pass may have found task cycles; fixpoint
    # iteration (bounded by lattice height x tasks) is robust to both and
    # order-independent, so the result stays deterministic.
    in_label: Dict[str, Sensitivity] = {t: Sensitivity.PUBLIC for t in tasks}
    out_label: Dict[str, Sensitivity] = dict(in_label)

    def reads_of(task: str) -> List[str]:
        return sorted(e.src for e in app.edges
                      if e.dst == task and e.src in data_label)

    def task_preds_of(task: str) -> List[str]:
        return sorted(e.src for e in app.edges
                      if e.dst == task and e.src in tasks)

    changed = True
    while changed:
        changed = False
        for task in sorted(tasks):
            incoming = Sensitivity.PUBLIC
            for data_name in reads_of(task):
                incoming = _join(incoming, data_label[data_name])
            for pred in task_preds_of(task):
                incoming = _join(incoming, out_label[pred])
            outgoing = incoming
            if app.task(task).sanitizer:
                # Declassification: a sanitizer's output is at most
                # anonymized, whatever flowed in.
                if outgoing.rank > Sensitivity.ANONYMIZED.rank:
                    outgoing = Sensitivity.ANONYMIZED
            if incoming != in_label[task] or outgoing != out_label[task]:
                in_label[task] = incoming
                out_label[task] = outgoing
                changed = True

    for task in sorted(tasks):
        clearance = clearance_of(definition, task)

        # UDC040 — the environment is too weak for what flows in.
        if in_label[task].rank > clearance.rank:
            findings.append(Diagnostic(
                code="UDC040", severity=Severity.ERROR, module=task,
                aspect="execenv",
                message=f"receives {in_label[task].value} data but its "
                        f"execution environment only clears "
                        f"{clearance.value}",
                hint="demand stronger isolation (e.g. a single-tenant VM "
                     "or enclave) or sanitize the inputs upstream",
            ))

        # UDC041 — a write that would downgrade the label.  Sanitizers
        # already capped their output, so any remaining mismatch is a
        # silent declassification.
        for edge in app.edges:
            if edge.src != task or edge.dst not in data_label:
                continue
            sink = data_label[edge.dst]
            if out_label[task].rank > sink.rank:
                findings.append(Diagnostic(
                    code="UDC041", severity=Severity.ERROR, module=task,
                    message=f"writes {out_label[task].value} data to "
                            f"{edge.dst!r}, which is labeled {sink.value}; "
                            f"only a sanitizer may declassify",
                    hint=f"route the flow through a sanitizer task, or "
                         f"raise {edge.dst}'s sensitivity label to "
                         f"{out_label[task].value}",
                ))

        # UDC043 — a sanitizer whose inputs are all public sanitizes
        # nothing; almost certainly a mislabeled graph.
        if app.task(task).sanitizer \
                and in_label[task] is Sensitivity.PUBLIC:
            findings.append(Diagnostic(
                code="UDC043", severity=Severity.WARNING, module=task,
                message=f"task {task!r} is flagged as a sanitizer but "
                        f"receives no sensitive data",
                hint="drop the sanitizer flag or label its input data "
                     "modules",
            ))

    return findings
