"""Aspect-conflict pass (``UDC010``–``UDC015``).

Cross-module contradictions inside one definition — the checks §3.4
motivates ("users may define conflicting specifications for different
modules") plus the resilience-economics contradictions PR 1 made
expressible: a hedge+retry budget whose worst case multiplies past the
module's declared cost cap, and a deadline no placement can meet given
the declared work.

Unlike :mod:`repro.core.conflicts` (which *rewrites* consistency under
the strictest-wins policy at admission), this pass only reports: it runs
before any placement and leaves the definition untouched.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import TaskModule
from repro.core.aspects import AspectBundle, ResourceGoal
from repro.core.spec import UserDefinition
from repro.distsem.consistency import ConsistencyLevel
from repro.hardware.devices import DEFAULT_SPECS, DeviceSpec, DeviceType
from repro.hardware.topology import DatacenterSpec

__all__ = ["conflict_pass"]

SECONDS_PER_HOUR = 3600.0


def _spec_for(datacenter_spec: Optional[DatacenterSpec],
              device_type: DeviceType) -> DeviceSpec:
    if datacenter_spec is not None:
        return datacenter_spec.spec_for(device_type)
    return DEFAULT_SPECS[device_type]


def _candidate_types(task: TaskModule,
                     bundle: AspectBundle) -> List[DeviceType]:
    """Device types this task could legally run on under its bundle."""
    resource = bundle.resource
    if resource is not None and resource.device is not None:
        if resource.device in task.device_candidates:
            return [resource.device]
        # Mismatch is the feasibility pass's UDC023; fall back to the
        # developer's candidates so cost/latency bounds stay meaningful.
    return sorted(task.device_candidates, key=lambda d: d.value)


def _min_exec_seconds(task: TaskModule, bundle: AspectBundle,
                      datacenter_spec: Optional[DatacenterSpec]) -> float:
    """Optimistic execution time: fastest candidate at the declared
    amount (or one unit), capped by the task's usable parallelism."""
    resource = bundle.resource
    amount = resource.amount if (resource is not None
                                 and resource.amount is not None) else 1.0
    best = 0.0
    for device_type in _candidate_types(task, bundle):
        spec = _spec_for(datacenter_spec, device_type)
        if spec.compute_rate <= 0:
            continue
        usable = task.usable_amount(min(amount, spec.capacity))
        best = max(best, spec.compute_rate * usable)
    return task.work / best if best > 0 else 0.0


def _min_attempt_cost(task: TaskModule, bundle: AspectBundle,
                      datacenter_spec: Optional[DatacenterSpec]) -> float:
    """Cheapest possible dollars for one attempt of this task."""
    resource = bundle.resource
    amount = resource.amount if (resource is not None
                                 and resource.amount is not None) else 1.0
    cheapest = None
    for device_type in _candidate_types(task, bundle):
        spec = _spec_for(datacenter_spec, device_type)
        if spec.compute_rate <= 0:
            continue
        usable = task.usable_amount(min(amount, spec.capacity))
        seconds = task.work / (spec.compute_rate * usable)
        cost = seconds / SECONDS_PER_HOUR * spec.unit_price_hour * amount
        if cheapest is None or cost < cheapest:
            cheapest = cost
    return cheapest or 0.0


def _critical_path_lower_bounds(app: ModuleDAG, definition: UserDefinition,
                                datacenter_spec: Optional[DatacenterSpec]):
    """Per task: optimistic seconds from the app's start through it."""
    graph = app.effective_task_graph()
    lower = {}
    if not nx.is_directed_acyclic_graph(graph):
        # Task cycles are the structural pass's UDC030; no lower bound
        # is derivable here.
        return lower
    for name in nx.topological_sort(graph):
        task = app.task(name)
        own = _min_exec_seconds(task, definition.bundle_for(name),
                                datacenter_spec)
        upstream = max(
            (lower[p] for p in sorted(graph.predecessors(name))),
            default=0.0,
        )
        lower[name] = upstream + own
    return lower


def conflict_pass(
    definition: UserDefinition,
    app: Optional[ModuleDAG] = None,
    datacenter_spec: Optional[DatacenterSpec] = None,
    tenant_tier: Optional[str] = None,
) -> List[Diagnostic]:
    """Cross-module contradiction checks over one parsed definition.

    ``tenant_tier`` is the submitting tenant's effective tier
    (``"firm"`` / ``"spot"``) when the serving layer lints a submission;
    the CLI leaves it unset.
    """
    findings: List[Diagnostic] = []

    # UDC014 — definition modules the app does not contain.  Everything
    # downstream (consistency pairings, flow labels) silently skips such
    # modules, so surface the mismatch explicitly.
    if app is not None:
        for name in sorted(definition.bundles):
            if name not in app.modules:
                findings.append(Diagnostic(
                    code="UDC014", severity=Severity.WARNING, module=name,
                    message=f"definition declares aspects for {name!r}, "
                            f"which app {app.name!r} does not contain",
                    hint="remove the stray entry or rename it to match "
                         "a module in the application",
                ))

    # UDC010 — a task demanding stricter consistency of a data module
    # than that module's replica source declares (undeclared data
    # consistency falls back to the provider default, eventual).
    if app is not None:
        for name in sorted(definition.bundles):
            if name not in app.modules:
                continue
            dist = definition.bundle_for(name).distributed
            if dist is None:
                continue
            for data_name in sorted(dist.data_consistency):
                expected = dist.data_consistency[data_name]
                own = definition.bundle_for(data_name).distributed
                declared = (own.consistency if own is not None
                            and own.consistency is not None
                            else ConsistencyLevel.EVENTUAL)
                if expected.rank > declared.rank:
                    findings.append(Diagnostic(
                        code="UDC010", severity=Severity.ERROR, module=name,
                        aspect="distributed",
                        message=f"demands {expected.value} consistency of "
                                f"{data_name}, but {data_name} declares "
                                f"{declared.value}",
                        hint=f"raise {data_name}'s consistency to "
                             f"{expected.value} or relax {name}'s "
                             f"expectation",
                    ))

    for name in sorted(definition.bundles):
        bundle = definition.bundle_for(name)
        dist = bundle.distributed
        if dist is None:
            continue
        task = None
        if app is not None and name in app.modules:
            module = app.modules[name]
            if isinstance(module, TaskModule):
                task = module

        # UDC015 — a persistent (never-evicted) deployment under spot
        # economics.  Spot capacity is preemption-eligible by definition
        # (a cheapest goal implies the spot tier, and a spot tenant's
        # submissions all run there), but the preemptor skips persistent
        # submissions — so the discount the spot placement is priced on
        # could never be honored.  The definition contradicts itself.
        resource = bundle.resource
        if dist.persistent:
            if resource is not None and resource.goal == ResourceGoal.CHEAPEST:
                findings.append(Diagnostic(
                    code="UDC015", severity=Severity.ERROR, module=name,
                    aspect="distributed",
                    message=f"module {name!r} is persistent but its "
                            f"resource goal is cheapest, which places it "
                            f"on the preemptible spot tier; a persistent "
                            f"deployment is never evicted, so the spot "
                            f"discount could never be honored",
                    hint="drop the persistent flag, or switch the goal "
                         "to fastest / a pinned device",
                ))
            elif tenant_tier == "spot":
                findings.append(Diagnostic(
                    code="UDC015", severity=Severity.ERROR, module=name,
                    aspect="distributed",
                    message=f"module {name!r} is persistent but the "
                            f"submitting tenant runs on the spot tier; "
                            f"spot work is preemption-eligible while "
                            f"persistent deployments are never evicted",
                    hint="submit from a firm-tier tenant or drop the "
                         "persistent flag",
                ))

        # UDC013 — cheapest goal + hedging: every hedge is a deliberate
        # duplicate execution, directly multiplying the cost the goal
        # asked to minimize.
        if (dist.hedge is not None and resource is not None
                and resource.goal == ResourceGoal.CHEAPEST):
            findings.append(Diagnostic(
                code="UDC013", severity=Severity.WARNING, module=name,
                aspect="distributed",
                message="resource goal is cheapest, but the hedge policy "
                        "duplicates execution (up to "
                        f"{dist.hedge.max_hedges} extra attempt(s))",
                hint="drop the hedge, or switch the goal to fastest if "
                     "tail latency matters more than cost",
            ))

        # UDC011 / UDC012 need the declared work, i.e. the app.
        if task is None:
            continue

        if dist.cost_cap_dollars is not None:
            per_attempt = _min_attempt_cost(task, bundle, datacenter_spec)
            attempts = dist.retry.max_attempts if dist.retry is not None else 1
            hedges = dist.hedge.max_hedges if dist.hedge is not None else 0
            worst = per_attempt * attempts * (1 + hedges)
            if worst > dist.cost_cap_dollars:
                budget = []
                if attempts > 1:
                    budget.append(f"{attempts} retry attempts")
                if hedges:
                    budget.append(f"{1 + hedges}x hedging")
                detail = " x ".join(budget) if budget else "one attempt"
                findings.append(Diagnostic(
                    code="UDC011", severity=Severity.ERROR, module=name,
                    aspect="distributed",
                    message=f"worst-case cost ${worst:.6f} ({detail} at "
                            f"${per_attempt:.6f}/attempt) exceeds the "
                            f"declared cost cap "
                            f"${dist.cost_cap_dollars:.6f}",
                    hint="lower max_attempts/max_hedges or raise "
                         "cost_cap_dollars above the worst case",
                ))

    # UDC012 — a deadline below the critical-path lower bound can never
    # be met, on any hardware the catalog offers.
    if app is not None:
        lower_bounds = _critical_path_lower_bounds(app, definition,
                                                   datacenter_spec)
        for name in sorted(lower_bounds):
            dist = definition.bundle_for(name).distributed
            if dist is None or dist.deadline_s is None:
                continue
            bound = lower_bounds[name]
            if dist.deadline_s < bound:
                findings.append(Diagnostic(
                    code="UDC012", severity=Severity.ERROR, module=name,
                    aspect="distributed",
                    message=f"deadline_s={dist.deadline_s:g} is below the "
                            f"critical-path lower bound {bound:.3f}s from "
                            f"the declared task costs",
                    hint=f"raise deadline_s to at least {bound:.3f} or "
                         f"reduce upstream work",
                ))

    return findings
