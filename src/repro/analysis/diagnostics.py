"""Diagnostics framework for the static analyzer (``udc lint``).

The paper's §3.4 requires UDC to *"detect such conflicts and either
choose the strictest specification or return an error to the user"*, and
§4's verification story only catches violations after a run has been paid
for.  The analyzer moves that whole error class to admission time; this
module is its vocabulary: stable ``UDC0xx`` codes, severities, source
locations (module + aspect), optional fix-it hints, and a report type
whose orderings and JSON form are byte-deterministic.

Code ranges, one block per pass:

* ``UDC001``          — the definition failed to parse at all;
* ``UDC010``–``019``  — aspect-conflict pass (cross-module contradictions);
* ``UDC020``–``029``  — feasibility pass (definition vs datacenter catalog);
* ``UDC030``–``039``  — DAG structural pass;
* ``UDC040``–``049``  — information-flow pass (sensitivity lattice).

Codes are append-only: a released code never changes meaning, so scripts
and CI gates can match on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "CODE_CATALOG",
    "Diagnostic",
    "Severity",
]


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` gates admission."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {
    Severity.ERROR: 2,
    Severity.WARNING: 1,
    Severity.INFO: 0,
}


#: Every code the analyzer can emit, with its one-line meaning.  The
#: error-code catalog in docs/analysis.md renders from the same text.
CODE_CATALOG: Dict[str, str] = {
    "UDC001": "definition failed to parse (SpecError)",
    # -- aspect-conflict pass -------------------------------------------------
    "UDC010": "task demands stricter consistency than the data module declares",
    "UDC011": "worst-case retry x hedge cost exceeds the declared cost cap",
    "UDC012": "deadline below the critical-path lower bound",
    "UDC013": "cheapest-goal module with a hedge policy (duplicates cost)",
    "UDC014": "definition names a module the application does not contain",
    "UDC015": "persistent module under spot-tier economics "
              "(preemption-eligible yet never evictable)",
    # -- feasibility pass -----------------------------------------------------
    "UDC020": "no single device of the requested type can hold the demand",
    "UDC021": "requested device/media type has no pool in this datacenter",
    "UDC022": "aggregate demand exceeds the pool's total capacity",
    "UDC023": "declared device is not among the task's device candidates",
    "UDC024": "requested amount is not allocatable on this device type",
    "UDC025": "co-location group's shared device types are absent from the catalog",
    "UDC026": "tenant quota cannot admit this submission",
    # -- DAG structural pass --------------------------------------------------
    "UDC030": "task graph contains a cycle",
    "UDC031": "task module is disconnected from the application DAG",
    "UDC032": "data module is never read or written",
    "UDC033": "edge references an unknown module",
    "UDC034": "module has a self-loop edge",
    # -- information-flow pass ------------------------------------------------
    "UDC040": "task clearance is below the sensitivity of data it receives",
    "UDC041": "labeled data would flow to a lower-sensitivity sink "
              "without a sanitizer",
    "UDC042": "phi-labeled data module stored without encryption",
    "UDC043": "sanitizer task receives no sensitive data",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a location, and what to do about it.

    ``module`` is the offending module's name (or ``"*"`` for whole-app
    findings); ``aspect`` narrows the location to one aspect
    (``resource`` / ``execenv`` / ``distributed``) when the finding is
    aspect-specific.
    """

    code: str
    severity: Severity
    module: str
    message: str
    aspect: Optional[str] = None
    hint: Optional[str] = None

    def __post_init__(self):
        if self.code != "UDC001" and self.code not in CODE_CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def location(self) -> str:
        return f"{self.module}.{self.aspect}" if self.aspect else self.module

    def sort_key(self):
        """Deterministic report order: by module, then code, then text."""
        return (self.module, self.code, self.aspect or "", self.message)

    def format(self) -> str:
        line = f"{self.code} {self.severity.value:<7} {self.location}: " \
               f"{self.message}"
        if self.hint:
            line += f"\n    fix: {self.hint}"
        return line

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "module": self.module,
            "aspect": self.aspect,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class AnalysisReport:
    """Every diagnostic from one analyzer invocation, in stable order."""

    diagnostics: List[Diagnostic]

    def __post_init__(self):
        self.diagnostics = sorted(self.diagnostics,
                                  key=Diagnostic.sort_key)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/info do not gate)."""
        return not self.errors

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def format_text(self) -> str:
        if not self.diagnostics:
            return "no findings"
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)}"
            f" info"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        """Byte-deterministic JSON form (dump with ``sort_keys=True``)."""
        return {
            "findings": [d.to_dict() for d in self.diagnostics],
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": (len(self.diagnostics) - len(self.errors)
                         - len(self.warnings)),
            },
            "ok": self.ok,
        }


class AnalysisError(Exception):
    """Raised by the opt-in ``analyze=`` paths and the service front door
    when a definition has error-severity findings."""

    def __init__(self, report: AnalysisReport):
        self.report = report
        super().__init__(
            "; ".join(f"{d.code} {d.location}: {d.message}"
                      for d in report.errors)
        )
