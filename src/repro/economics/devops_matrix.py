"""The cloud DevOps matrix from hell (paper §1/§2, claim C5).

*"When there is new hardware to deploy or a security feature to add, the
cloud provider needs to integrate them into every single one of its
existing services.  On the other hand, launching a new service dictates
that the service must be compatible with different types of hardware,
system software, and security features ... These two problems collectively
create a 'cloud DevOps matrix from hell'."*

Cost model:

* **provider-dictated** — every (service, feature) pair must be
  integrated and regression-tested: cost ∝ services x features, plus a
  per-service and per-feature base.
* **UDC (decoupled)** — layers are independent: adding a feature costs
  only that feature's work; adding a service only that service's.  Cost ∝
  services + features, plus a one-time investment in the customizable
  infrastructure (§4: "providers only need to pay a one-time cost").

Benchmark E8 sweeps ecosystem growth and reports when the UDC curve,
despite its upfront cost, drops below the matrix curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["GrowthScenario", "decoupled_cost", "matrix_cost", "sweep_growth"]

#: engineer-week costs (arbitrary but consistent units)
PAIR_INTEGRATION_COST = 2.0      # integrate one feature into one service
SERVICE_BASE_COST = 40.0         # stand up one service
FEATURE_BASE_COST = 25.0         # develop one feature (hardware or software)
UDC_INFRA_ONE_TIME = 600.0       # the customizable infrastructure investment
UDC_SERVICE_COST = 8.0           # a "service" is just a spec template now
UDC_FEATURE_COST = 30.0          # features integrate against one interface


def matrix_cost(services: int, features: int) -> float:
    """Cumulative development cost under the provider-dictated model."""
    if services < 0 or features < 0:
        raise ValueError("services and features must be >= 0")
    return (
        services * SERVICE_BASE_COST
        + features * FEATURE_BASE_COST
        + services * features * PAIR_INTEGRATION_COST
    )


def decoupled_cost(services: int, features: int) -> float:
    """Cumulative development cost under UDC's decoupled layers."""
    if services < 0 or features < 0:
        raise ValueError("services and features must be >= 0")
    return (
        UDC_INFRA_ONE_TIME
        + services * UDC_SERVICE_COST
        + features * UDC_FEATURE_COST
    )


@dataclass
class GrowthScenario:
    """One year-by-year growth trajectory with both cost curves."""

    years: List[int] = field(default_factory=list)
    services: List[int] = field(default_factory=list)
    features: List[int] = field(default_factory=list)
    matrix: List[float] = field(default_factory=list)
    decoupled: List[float] = field(default_factory=list)

    @property
    def crossover_year(self) -> int:
        """First year the decoupled model is cheaper (-1 if never)."""
        for year, m, d in zip(self.years, self.matrix, self.decoupled):
            if d < m:
                return year
        return -1


def sweep_growth(
    horizon_years: int = 10,
    services_per_year: int = 6,
    features_per_year: int = 4,
    initial_services: int = 10,
    initial_features: int = 5,
) -> GrowthScenario:
    """Grow the ecosystem linearly and evaluate both cost models yearly.

    The defaults roughly track public-cloud history (AWS launched ~5-10
    substantial services a year through the 2010s while adding hardware
    generations, TEEs, accelerators, ...).
    """
    if horizon_years < 1:
        raise ValueError("horizon_years must be >= 1")
    scenario = GrowthScenario()
    for year in range(horizon_years + 1):
        services = initial_services + services_per_year * year
        features = initial_features + features_per_year * year
        scenario.years.append(year)
        scenario.services.append(services)
        scenario.features.append(features)
        scenario.matrix.append(matrix_cost(services, features))
        scenario.decoupled.append(decoupled_cost(services, features))
    return scenario
