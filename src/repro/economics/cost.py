"""Cost aggregation helpers shared by benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CostComparison", "compare_costs"]


@dataclass(frozen=True)
class CostComparison:
    """Two labeled costs with derived ratios."""

    label_a: str
    cost_a: float
    label_b: str
    cost_b: float

    @property
    def ratio(self) -> float:
        """cost_a / cost_b (inf when b is zero and a is not)."""
        if self.cost_b == 0:
            return float("inf") if self.cost_a > 0 else 1.0
        return self.cost_a / self.cost_b

    @property
    def saving_fraction(self) -> float:
        """How much cheaper b is than a, as a fraction of a.

        Zero-baseline edge case: with ``cost_a == 0`` there is no
        baseline to save against.  A strictly more expensive b is an
        *infinite* loss (``-inf``, consistent with ``ratio == 0``), not
        the silent "no saving" 0.0 this used to report; two zero costs
        are a genuine wash (0.0, consistent with ``ratio == 1``).
        """
        if self.cost_a == 0:
            return 0.0 if self.cost_b == 0 else float("-inf")
        return 1.0 - self.cost_b / self.cost_a

    def as_dict(self) -> Dict[str, float]:
        return {
            self.label_a: self.cost_a,
            self.label_b: self.cost_b,
            "ratio": self.ratio,
            "saving": self.saving_fraction,
        }


def compare_costs(label_a: str, cost_a: float, label_b: str, cost_b: float) \
        -> CostComparison:
    if cost_a < 0 or cost_b < 0:
        raise ValueError("costs must be non-negative")
    return CostComparison(
        label_a=label_a, cost_a=cost_a, label_b=label_b, cost_b=cost_b
    )
