"""Per-tenant cost and usage rollups for the serving layer.

The paper's economics are per-user: each tenant pays exactly for what
its definitions consumed (§2, C10).  :class:`TenantLedger` aggregates
the serving layer's outcomes — submissions, completions, queue waits,
settled cost, and the cost *not* spent thanks to result-cache hits —
into one :class:`TenantUsage` row per tenant, and :func:`jain_index`
scores how evenly any per-tenant metric is spread (the fairness measure
benchmark E23 asserts on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.report import RunResult

__all__ = ["TenantLedger", "TenantUsage", "jain_index"]


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even; ``1/n`` means one tenant got everything.
    An empty or all-zero input scores 1.0 (nothing was distributed, so
    nothing was distributed unfairly).
    """
    xs = list(values)
    if not xs:
        return 1.0
    square_sum = sum(x * x for x in xs)
    if square_sum == 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


@dataclass
class TenantUsage:
    """One tenant's aggregate consumption under a service."""

    tenant: str
    submissions: int = 0
    completed: int = 0
    unplaceable: int = 0
    rejected: int = 0
    cache_hits: int = 0
    total_cost: float = 0.0
    #: cost of executions served from the result cache instead of re-run
    cost_saved: float = 0.0
    queue_wait_s: float = 0.0
    makespan_s: float = 0.0
    #: what the tenant was actually charged (metered cost through the
    #: tenant's pricing plan; equals total_cost on the firm tier)
    billed_cost: float = 0.0
    #: completions that blew their declared SLO (queue wait + makespan)
    slo_misses: int = 0


class TenantLedger:
    """Accumulates per-tenant rollups as the service observes outcomes."""

    def __init__(self):
        self._usages: Dict[str, TenantUsage] = {}

    def usage(self, tenant: str) -> TenantUsage:
        if tenant not in self._usages:
            self._usages[tenant] = TenantUsage(tenant=tenant)
        return self._usages[tenant]

    def record_submission(self, tenant: str) -> None:
        self.usage(tenant).submissions += 1

    def record_rejection(self, tenant: str) -> None:
        self.usage(tenant).rejected += 1

    def record_cache_hit(self, tenant: str, result: RunResult) -> None:
        usage = self.usage(tenant)
        usage.cache_hits += 1
        usage.cost_saved += result.total_cost

    def record_result(self, tenant: str, result: RunResult,
                      queue_wait_s: float = 0.0,
                      billed_cost: Optional[float] = None,
                      slo_miss: bool = False) -> None:
        usage = self.usage(tenant)
        usage.completed += 1
        usage.total_cost += result.total_cost
        usage.queue_wait_s += queue_wait_s
        usage.makespan_s += result.makespan_s
        usage.billed_cost += (billed_cost if billed_cost is not None
                              else result.total_cost)
        if slo_miss:
            usage.slo_misses += 1

    def record_unplaceable(self, tenant: str) -> None:
        self.usage(tenant).unplaceable += 1

    def rollup(self) -> List[TenantUsage]:
        """All usages, sorted by tenant name (deterministic reporting)."""
        return [self._usages[name] for name in sorted(self._usages)]

    def fairness(self, metric: str = "completed",
                 tenants: Optional[Iterable[str]] = None) -> float:
        """Jain's index over one :class:`TenantUsage` field.

        ``tenants`` restricts (and zero-fills) the population — pass the
        registered tenant set so a tenant that got *nothing* counts
        against fairness instead of vanishing from the denominator.

        With zero recorded tenants (and no explicit population) this
        returns the documented 1.0: nothing was distributed, so nothing
        was distributed unfairly.  Reading fairness never mutates the
        ledger — a tenant named in ``tenants`` but never recorded is
        scored as zero without a row materializing in :meth:`rollup`.
        """
        if metric not in TenantUsage.__dataclass_fields__ \
                or metric == "tenant":
            raise ValueError(f"unknown usage metric {metric!r}")
        zero = TenantUsage(tenant="")
        if tenants is not None:
            values = [
                getattr(self._usages.get(name, zero), metric)
                for name in tenants
            ]
        else:
            values = [getattr(usage, metric) for usage in self.rollup()]
        return jain_index(float(v) for v in values)
