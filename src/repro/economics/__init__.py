"""Economics models (paper §2 and §4).

* :mod:`~repro.economics.devops_matrix` — the "cloud DevOps matrix from
  hell": provider development cost growing as services x features under
  the provider-dictated model vs services + features under UDC's
  decoupled layers (C5, benchmark E8);
* :mod:`~repro.economics.pricing` — the unit-price window where the
  provider charges *more* per unit yet the user's total bill *drops*,
  enabled by eliminating waste and consolidating utilization (C10, E9);
* :mod:`~repro.economics.cost` — cost aggregation helpers shared by the
  benchmarks;
* :mod:`~repro.economics.autopilot` — the economic autopilot: per-tenant
  budget enforcement (kernel) with adaptive ceilings (planner), spot/firm
  pricing plans, and the forecast that sizes warm pools (C7, C10).
"""

from repro.economics.autopilot import (
    FIRM_PLAN,
    SPOT_PLAN,
    AdaptiveBudgetHook,
    BudgetEnforcer,
    PricingPlan,
    WarmPoolForecaster,
)
from repro.economics.cost import CostComparison, compare_costs
from repro.economics.devops_matrix import (
    GrowthScenario,
    decoupled_cost,
    matrix_cost,
    sweep_growth,
)
from repro.economics.pricing import PricingWindow, pricing_window
from repro.economics.provider import ProviderLedger, account_run, powered_devices
from repro.economics.tenants import TenantLedger, TenantUsage, jain_index

__all__ = [
    "AdaptiveBudgetHook",
    "BudgetEnforcer",
    "CostComparison",
    "FIRM_PLAN",
    "GrowthScenario",
    "PricingPlan",
    "PricingWindow",
    "ProviderLedger",
    "SPOT_PLAN",
    "TenantLedger",
    "TenantUsage",
    "WarmPoolForecaster",
    "jain_index",
    "account_run",
    "powered_devices",
    "compare_costs",
    "decoupled_cost",
    "matrix_cost",
    "pricing_window",
    "sweep_growth",
]
