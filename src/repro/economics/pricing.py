"""The unit-price window (paper §2/§4, claim C10).

*"Although cloud providers cannot charge users for the resources they do
not use, they can increase the unit price of their computing resources to
the extent that still offers users a lower total cost than today's cloud.
Moreover, without resource wastes, providers could potentially consolidate
more applications to the same amount of computing resources."*

Model, for a workload population with IaaS waste fraction ``w`` and a
consolidation gain ``g = util_udc / util_iaas``:

* User breakeven: under IaaS the user pays ``P``; under UDC at unit-price
  multiplier ``m`` they pay ``m * (1 - w) * P``.  The user saves while
  ``m < 1 / (1 - w)``.
* Provider breakeven: provider profit = revenue − capacity cost.  Serving
  the same used demand needs ``1/g`` of the capacity, so the provider
  profits more than under IaaS while
  ``m > (P - C(1 - 1/g)) / ((1 - w) P)`` where ``C`` is the IaaS-era
  capacity cost (expressed via the provider's baseline margin).

The window between the two breakevens is where **both** parties win — the
existence and width of that window is what benchmark E9 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PricingWindow", "pricing_window"]


@dataclass(frozen=True)
class PricingWindow:
    """The multiplier range where provider profit and user savings coexist."""

    #: below this the provider earns less profit than under IaaS
    provider_breakeven: float
    #: above this the user pays more than under IaaS
    user_breakeven: float
    waste_fraction: float
    consolidation_gain: float
    provider_margin: float

    @property
    def exists(self) -> bool:
        return self.provider_breakeven < self.user_breakeven

    @property
    def width(self) -> float:
        return max(self.user_breakeven - self.provider_breakeven, 0.0)

    @property
    def midpoint(self) -> float:
        return (self.provider_breakeven + self.user_breakeven) / 2.0

    def user_saving_at(self, multiplier: float) -> float:
        """User's fractional bill reduction vs IaaS at ``multiplier``."""
        return 1.0 - multiplier * (1.0 - self.waste_fraction)

    def provider_profit_gain_at(self, multiplier: float) -> float:
        """Provider's profit change vs IaaS (fraction of IaaS revenue)."""
        cost = 1.0 - self.provider_margin  # capacity cost per IaaS revenue
        iaas_profit = self.provider_margin
        udc_revenue = multiplier * (1.0 - self.waste_fraction)
        udc_cost = cost / self.consolidation_gain
        return (udc_revenue - udc_cost) - iaas_profit


def pricing_window(
    waste_fraction: float,
    consolidation_gain: float,
    provider_margin: float = 0.3,
) -> PricingWindow:
    """Compute the win-win unit-price multiplier window.

    Args:
        waste_fraction: IaaS spend fraction wasted (C1's ~0.35).
        consolidation_gain: utilization ratio UDC/IaaS (C6's ~2.0).
        provider_margin: provider's IaaS profit margin (industry ~30%).
    """
    if not 0.0 <= waste_fraction < 1.0:
        raise ValueError("waste_fraction must be in [0, 1)")
    if consolidation_gain <= 0:
        raise ValueError("consolidation_gain must be positive")
    if not 0.0 <= provider_margin < 1.0:
        raise ValueError("provider_margin must be in [0, 1)")

    user_breakeven = 1.0 / (1.0 - waste_fraction)
    capacity_cost = 1.0 - provider_margin
    # Solve provider_profit_gain_at(m) == 0 for m.
    provider_breakeven = (
        provider_margin + capacity_cost / consolidation_gain
    ) / (1.0 - waste_fraction)
    return PricingWindow(
        provider_breakeven=provider_breakeven,
        user_breakeven=user_breakeven,
        waste_fraction=waste_fraction,
        consolidation_gain=consolidation_gain,
        provider_margin=provider_margin,
    )
