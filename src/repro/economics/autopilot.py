"""Economic autopilot: budgets, spot pricing, and warm-pool forecasting.

The paper's economic claims are about *feedback*: providers can raise
unit prices yet lower user bills (C7) because users state goals and the
provider optimizes continuously (C10).  This module supplies the three
control-loop pieces the serving layer wires together:

* :class:`BudgetEnforcer` — the **kernel**: tracks per-tenant spend
  against a declared budget and answers admit/deny at the submission
  front door.  It never adjusts anything on its own; enforcement is
  mechanical and auditable (``check_accounting``).
* :class:`AdaptiveBudgetHook` — the **planner**: each dispatch round it
  recomputes soft spending ceilings from observed burn rate vs. SLO
  attainment and hands them to the enforcer.  The split mirrors the
  veronica-core idiom: the kernel enforces, the planner decides — an
  adaptive component never sits inside the enforcement boundary.
* :class:`WarmPoolForecaster` — an EWMA/seasonal estimator over warm
  environment demand that sizes :class:`~repro.execenv.warmpool
  .WarmPool` shelves per upcoming window instead of a fixed depth.

Everything here is deterministic arithmetic over observed state —
no wall clock, no RNG — so autopilot runs record/replay byte-identically
(forecaster and enforcer state are captured in replay fingerprints like
RNG streams are).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = [
    "AdaptiveBudgetHook",
    "BudgetEnforcer",
    "FIRM_PLAN",
    "PricingPlan",
    "SPOT_PLAN",
    "WarmPoolForecaster",
]


@dataclass(frozen=True)
class PricingPlan:
    """How a tenant's raw metered cost converts to a bill.

    ``multiplier`` scales the pay-per-use meter: the firm tier bills at
    list price; the spot tier discounts in exchange for preemption
    eligibility (the provider reclaims spot capacity whenever firm work
    cannot otherwise be placed).
    """

    name: str = "firm"
    multiplier: float = 1.0
    #: spot-tier placements may be preempted for firm-tier work
    preemptible: bool = False

    def __post_init__(self):
        if self.multiplier <= 0:
            raise ValueError(
                f"multiplier must be positive, got {self.multiplier}"
            )

    def billed(self, metered_cost: float) -> float:
        """Dollars billed for ``metered_cost`` dollars of metered usage."""
        return metered_cost * self.multiplier


#: list-price, never-preempted default plan
FIRM_PLAN = PricingPlan(name="firm", multiplier=1.0, preemptible=False)
#: discounted, preemption-eligible plan for ``goal="cheapest"`` tenants
SPOT_PLAN = PricingPlan(name="spot", multiplier=0.6, preemptible=True)


class BudgetEnforcer:
    """Per-tenant spend accounting and admission gating (the kernel).

    A tenant *declares* a hard budget; the planner may additionally set
    a *soft ceiling* at or below it.  :meth:`admit` denies when the
    tenant's settled spend has reached the effective ceiling.  The
    enforcer only ever applies ceilings it was handed — all adaptive
    logic lives in :class:`AdaptiveBudgetHook`.
    """

    def __init__(self):
        self._budgets: Dict[str, float] = {}
        self._ceilings: Dict[str, float] = {}
        self._spent: Dict[str, float] = {}
        self._rejections: Dict[str, int] = {}

    # -- declarations ------------------------------------------------------

    def declare(self, tenant: str, budget_dollars: Optional[float]) -> None:
        """Declare (or clear, with None) a tenant's hard budget."""
        if budget_dollars is None:
            self._budgets.pop(tenant, None)
            self._ceilings.pop(tenant, None)
            return
        if budget_dollars <= 0:
            raise ValueError(
                f"budget_dollars must be positive, got {budget_dollars}"
            )
        self._budgets[tenant] = float(budget_dollars)

    def set_ceiling(self, tenant: str, ceiling: Optional[float]) -> None:
        """Planner hook: soft ceiling, clamped to the declared budget."""
        if ceiling is None:
            self._ceilings.pop(tenant, None)
            return
        budget = self._budgets.get(tenant)
        if budget is not None:
            ceiling = min(float(ceiling), budget)
        self._ceilings[tenant] = max(0.0, float(ceiling))

    # -- queries -----------------------------------------------------------

    def budget_of(self, tenant: str) -> Optional[float]:
        return self._budgets.get(tenant)

    def ceiling_of(self, tenant: str) -> Optional[float]:
        """The effective admission ceiling: soft ceiling if set, else the
        declared budget; None when the tenant is unbudgeted."""
        ceiling = self._ceilings.get(tenant)
        if ceiling is not None:
            return ceiling
        return self._budgets.get(tenant)

    def spent(self, tenant: str) -> float:
        return self._spent.get(tenant, 0.0)

    def remaining(self, tenant: str) -> Optional[float]:
        budget = self._budgets.get(tenant)
        if budget is None:
            return None
        return max(0.0, budget - self.spent(tenant))

    def rejections(self, tenant: str) -> int:
        return self._rejections.get(tenant, 0)

    # -- enforcement -------------------------------------------------------

    def admit(self, tenant: str) -> Optional[str]:
        """None to admit; a denial reason once spend reached the ceiling."""
        ceiling = self.ceiling_of(tenant)
        if ceiling is None:
            return None
        spent = self.spent(tenant)
        if spent < ceiling:
            return None
        self._rejections[tenant] = self._rejections.get(tenant, 0) + 1
        budget = self._budgets.get(tenant)
        kind = ("budget" if budget is not None and ceiling >= budget
                else "budget ceiling")
        return (f"spent ${spent:.4f} of ${ceiling:.4f} {kind}")

    def charge(self, tenant: str, billed_dollars: float) -> float:
        """Settle a finished submission's bill; returns the new total."""
        if billed_dollars < 0:
            raise ValueError(
                f"billed_dollars must be >= 0, got {billed_dollars}"
            )
        total = self._spent.get(tenant, 0.0) + billed_dollars
        self._spent[tenant] = total
        return total

    # -- audit -------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any tenant has declared a budget or holds a ceiling."""
        return bool(self._budgets or self._ceilings)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Canonical (sorted, JSON-able) state for replay fingerprints."""
        tenants = sorted(
            set(self._budgets) | set(self._ceilings) | set(self._spent)
        )
        out: Dict[str, Dict[str, float]] = {}
        for name in tenants:
            row: Dict[str, float] = {"spent": round(self.spent(name), 9)}
            if name in self._budgets:
                row["budget"] = self._budgets[name]
            if name in self._ceilings:
                row["ceiling"] = round(self._ceilings[name], 9)
            if name in self._rejections:
                row["rejections"] = float(self._rejections[name])
            out[name] = row
        return out

    def check_accounting(
        self, billed_by_tenant: Dict[str, float], tolerance: float = 1e-6
    ) -> List[str]:
        """Drift audit against an independently-kept billed ledger.

        Returns one message per tenant whose enforcer spend disagrees
        with the ledger's billed total by more than ``tolerance`` —
        empty means the two books balance (the CI invariant).
        """
        problems: List[str] = []
        for name in sorted(set(self._spent) | set(billed_by_tenant)):
            mine = self.spent(name)
            theirs = billed_by_tenant.get(name, 0.0)
            if abs(mine - theirs) > tolerance:
                problems.append(
                    f"{name}: enforcer says ${mine:.6f}, "
                    f"ledger says ${theirs:.6f}"
                )
        return problems


class AdaptiveBudgetHook:
    """The planner: recompute soft ceilings once per dispatch round.

    Pacing model: a tenant's budget should last ``horizon_s`` of
    simulated time, so at time *t* the baseline ceiling is
    ``budget * (headroom + t / horizon)`` — an up-front ``headroom``
    fraction keeps cold starts from rejecting everything.  Feedback:
    when the tenant's observed SLO attainment drops below
    ``slo_target``, the ceiling is boosted by ``boost`` (spend budget
    faster to buy attainment back); when attainment is healthy and the
    tenant is burning ahead of pace, the ceiling holds at pace, letting
    :class:`BudgetEnforcer` shed load until time catches up.

    Pure deterministic arithmetic over the enforcer and ledger rollups;
    tenants are visited in sorted order.
    """

    def __init__(
        self,
        enforcer: BudgetEnforcer,
        horizon_s: float = 21600.0,
        headroom: float = 0.25,
        slo_target: float = 0.95,
        boost: float = 0.25,
    ):
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        if not 0.0 <= headroom <= 1.0:
            raise ValueError(f"headroom must be in [0, 1], got {headroom}")
        if not 0.0 < slo_target <= 1.0:
            raise ValueError(
                f"slo_target must be in (0, 1], got {slo_target}"
            )
        if boost < 0:
            raise ValueError(f"boost must be >= 0, got {boost}")
        self.enforcer = enforcer
        self.horizon_s = horizon_s
        self.headroom = headroom
        self.slo_target = slo_target
        self.boost = boost
        #: per-tenant ceilings computed last round (observability)
        self.last_ceilings: Dict[str, float] = {}

    def on_round(
        self,
        now: float,
        attainment: Dict[str, Tuple[int, int]],
    ) -> None:
        """Replan every budgeted tenant's ceiling.

        ``attainment`` maps tenant -> (completed, slo_misses) from the
        ledger; tenants missing from it are treated as fully attaining.
        """
        budgets = {
            name: self.enforcer.budget_of(name)
            for name in sorted(self.enforcer.snapshot())
        }
        for name in sorted(budgets):
            budget = budgets[name]
            if budget is None:
                continue
            pace = min(1.0, self.headroom + max(0.0, now) / self.horizon_s)
            ceiling = budget * pace
            completed, misses = attainment.get(name, (0, 0))
            if completed > 0:
                attained = 1.0 - misses / completed
                if attained < self.slo_target:
                    ceiling = min(budget, ceiling * (1.0 + self.boost))
            self.enforcer.set_ceiling(name, ceiling)
            self.last_ceilings[name] = ceiling

    def state(self) -> Dict[str, float]:
        """Canonical planner state for replay fingerprints."""
        return {
            name: round(value, 9)
            for name, value in sorted(self.last_ceilings.items())
        }


def _forecast_key(kind: Hashable, single_tenant: bool) -> str:
    """Stable string key for one warm-pool shelf (enum-safe, sortable)."""
    label = getattr(kind, "value", None)
    if label is None:
        label = str(kind)
    return f"{label}|{'1' if single_tenant else '0'}"


class WarmPoolForecaster:
    """EWMA + seasonal demand forecast for warm-pool shelf depths.

    Demand (``observe`` calls — one per warm-environment acquisition
    attempt) is counted per fixed window of ``window_s`` simulated
    seconds.  At each window boundary (``roll``) the finished window's
    count folds into two EWMAs per shelf: an *overall* level and a
    *seasonal* level for that window's slot within the day — the
    diurnal tenant trace repeats daily, so the same slot tomorrow is
    the best predictor of itself.  :meth:`target_for` turns the
    forecast for the *current* slot into a shelf depth, clamped to
    ``[min_depth, max_depth]``.

    State is plain dicts of floats; :meth:`state` renders it
    canonically so replay fingerprints capture the forecaster exactly
    like an RNG stream.
    """

    def __init__(
        self,
        window_s: float = 3600.0,
        day_s: float = 86400.0,
        alpha: float = 0.4,
        safety: float = 1.2,
        min_depth: int = 0,
        max_depth: int = 16,
    ):
        if window_s <= 0 or day_s <= 0:
            raise ValueError("window_s and day_s must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if safety <= 0:
            raise ValueError(f"safety must be positive, got {safety}")
        if min_depth < 0 or max_depth < min_depth:
            raise ValueError("need 0 <= min_depth <= max_depth")
        self.window_s = window_s
        self.slots_per_day = max(1, int(round(day_s / window_s)))
        self.alpha = alpha
        self.safety = safety
        self.min_depth = min_depth
        self.max_depth = max_depth
        #: shelf key -> overall EWMA of per-window demand
        self._level: Dict[str, float] = {}
        #: (shelf key, day slot) -> seasonal EWMA for that slot
        self._seasonal: Dict[Tuple[str, int], float] = {}
        #: demand observed in the currently-open window
        self._pending: Dict[str, int] = {}
        #: absolute window index of the open window (None until first roll)
        self._slot: Optional[int] = None

    # -- observation -------------------------------------------------------

    def observe(self, kind: Hashable, single_tenant: bool = False) -> None:
        """Count one warm-environment demand event (hit or miss).

        Signature matches :attr:`repro.execenv.warmpool.WarmPool
        .observer`, so the pool can report demand directly.
        """
        key = _forecast_key(kind, single_tenant)
        self._pending[key] = self._pending.get(key, 0) + 1

    def roll(self, now: float) -> bool:
        """Fold finished windows at ``now``; True when a boundary passed."""
        slot = int(now // self.window_s)
        if self._slot is None:
            self._slot = slot
            return False
        if slot <= self._slot:
            return False
        self._fold(self._slot, self._pending)
        self._pending = {}
        for idle in range(self._slot + 1, slot):
            self._fold(idle, {})
        self._slot = slot
        return True

    def _fold(self, slot: int, counts: Dict[str, int]) -> None:
        day_slot = slot % self.slots_per_day
        for key in sorted(set(self._level) | set(counts)):
            demand = float(counts.get(key, 0))
            old = self._level.get(key)
            self._level[key] = (
                demand if old is None
                else self.alpha * demand + (1.0 - self.alpha) * old
            )
            skey = (key, day_slot)
            sold = self._seasonal.get(skey)
            self._seasonal[skey] = (
                demand if sold is None
                else self.alpha * demand + (1.0 - self.alpha) * sold
            )

    # -- forecasting -------------------------------------------------------

    def forecast(self, kind: Hashable, single_tenant: bool = False) -> float:
        """Expected demand for the current window (0.0 before any data)."""
        key = _forecast_key(kind, single_tenant)
        if self._slot is None:
            return 0.0
        day_slot = self._slot % self.slots_per_day
        seasonal = self._seasonal.get((key, day_slot))
        if seasonal is not None:
            return seasonal
        return self._level.get(key, 0.0)

    def target_for(self, kind: Hashable, single_tenant: bool = False) -> int:
        """Shelf depth to prewarm for the current window."""
        demand = self.forecast(kind, single_tenant)
        depth = int(math.ceil(demand * self.safety))
        return max(self.min_depth, min(self.max_depth, depth))

    def known_keys(self) -> List[str]:
        """Every shelf key with recorded history, sorted."""
        return sorted(set(self._level) | set(self._pending))

    def state(self) -> Dict[str, object]:
        """Canonical (sorted, JSON-able) state for replay fingerprints."""
        return {
            "slot": self._slot,
            "level": {k: round(v, 9)
                      for k, v in sorted(self._level.items())},
            "seasonal": {f"{k}@{s}": round(v, 9)
                         for (k, s), v in sorted(self._seasonal.items())},
            "pending": dict(sorted(self._pending.items())),
        }
