"""Provider-side profit accounting over real runtime activity (§2, §4).

The pricing model (:mod:`repro.economics.pricing`) answers the question in
the abstract; this module answers it over an *actual* run: given the
tenant bills a :class:`~repro.core.runtime.UDCRuntime` collected and the
device-hours the datacenter's pools were powered, what was the provider's
revenue, capacity cost, and profit — and how does charging a unit-price
multiplier move it?

Capacity cost is charged per powered device-hour at a fraction of the
device's rental price (the provider's cost of goods); consolidation's
value appears directly as fewer powered device-hours for the same
revenue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.report import RunResult
from repro.hardware.topology import Datacenter

__all__ = ["ProviderLedger", "account_run"]

#: provider's cost of goods per unit-hour, as a fraction of the on-demand
#: unit price (a ~30% gross margin at multiplier 1.0, industry-plausible)
COST_OF_GOODS_FRACTION = 0.7


@dataclass
class ProviderLedger:
    """Revenue/cost/profit for one accounting window."""

    revenue: float
    capacity_cost: float
    powered_device_hours: float
    tenant_count: int

    @property
    def profit(self) -> float:
        return self.revenue - self.capacity_cost

    @property
    def margin(self) -> float:
        return self.profit / self.revenue if self.revenue else 0.0

    def at_multiplier(self, multiplier: float) -> "ProviderLedger":
        """The same window if unit prices had been scaled by ``multiplier``
        (capacity cost is the provider's own and does not scale)."""
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        return ProviderLedger(
            revenue=self.revenue * multiplier,
            capacity_cost=self.capacity_cost,
            powered_device_hours=self.powered_device_hours,
            tenant_count=self.tenant_count,
        )


def account_run(
    datacenter: Datacenter,
    results: Iterable[RunResult],
    window_s: float,
    powered_device_ids: Optional[Iterable[str]] = None,
) -> ProviderLedger:
    """Account one window of runtime activity.

    Revenue is the sum of tenant bills.  Capacity cost charges every
    *powered* device for the full window (powered devices burn money
    whether busy or idle — which is exactly why consolidation pays), at
    COST_OF_GOODS_FRACTION of its rental value.

    ``powered_device_ids`` should be a snapshot taken during the run
    (see :func:`powered_devices`); when omitted, the devices currently
    holding allocations are used — correct only mid-run, since teardown
    releases everything.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    results = list(results)
    revenue = sum(r.total_cost for r in results)
    if powered_device_ids is None:
        powered_device_ids = powered_devices(datacenter)
    powered = set(powered_device_ids)

    powered_hours = 0.0
    capacity_cost = 0.0
    hours = window_s / 3600.0
    for pool in datacenter.pools:
        for device in pool.devices:
            if device.device_id in powered:
                powered_hours += hours
                capacity_cost += (
                    device.spec.capacity * device.spec.unit_price_hour
                    * hours * COST_OF_GOODS_FRACTION
                )
    return ProviderLedger(
        revenue=revenue,
        capacity_cost=capacity_cost,
        powered_device_hours=powered_hours,
        tenant_count=len(results),
    )


def powered_devices(datacenter: Datacenter) -> List[str]:
    """Snapshot of device ids currently holding allocations — call during
    a run to build the powered set for :func:`account_run`."""
    return [
        device.device_id
        for pool in datacenter.pools
        for device in pool.devices
        if device.allocations
    ]
