"""Remote attestation over a simulated hardware root of trust (paper §4).

The paper: *"users can verify important properties without trusting the
vendor and by just trusting the hardware itself (i.e., hardware root of
trust)"* — and, critically, *"many features that UDC allows users to define
cannot be verified with today's remote attestation primitives (e.g.,
whether or not resources were provided as specified)."*

The model here makes both halves concrete:

* every attestable device carries a secret key known only to
  :class:`HardwareRootOfTrust` (standing in for the manufacturer's fused
  key + certificate chain);
* launching an attestable environment produces a :class:`Measurement`
  (hash chain over environment kind, code identity, config, and tenancy)
  and a :class:`Quote` = HMAC(device key, measurement) binding it to the
  device;
* a :class:`Verifier` holding only *public* reference values checks quotes
  against a policy.  Properties outside the measurement — notably resource
  *amounts* — are structurally unverifiable, which benchmark E12 surfaces.

A provider that lies about an unattestable property goes undetected; a
provider that lies about a measured property produces a quote mismatch.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.hardware.devices import Device

__all__ = [
    "ATTESTABLE_PROPERTIES",
    "AttestationError",
    "HardwareRootOfTrust",
    "Measurement",
    "Quote",
    "Verifier",
]


class AttestationError(Exception):
    """Raised when a quote fails verification."""


#: Properties a measurement covers, hence user-verifiable (E12's left
#: column).  Resource amount, replication factor, and consistency level are
#: deliberately absent — the paper's open problem.
ATTESTABLE_PROPERTIES: FrozenSet[str] = frozenset(
    {"env_kind", "code_hash", "single_tenant", "tenant", "device_model"}
)


def _hash_items(items: List[Tuple[str, str]]) -> bytes:
    """Order-sensitive hash chain over (name, value) pairs."""
    digest = hashlib.sha256()
    for name, value in items:
        digest.update(len(name).to_bytes(4, "big"))
        digest.update(name.encode("utf-8"))
        digest.update(len(value).to_bytes(4, "big"))
        digest.update(value.encode("utf-8"))
    return digest.digest()


@dataclass(frozen=True)
class Measurement:
    """Hash-chained record of what was actually launched."""

    env_kind: str
    code_hash: str
    tenant: str
    single_tenant: bool
    device_model: str
    extra: Tuple[Tuple[str, str], ...] = ()

    def items(self) -> List[Tuple[str, str]]:
        base = [
            ("env_kind", self.env_kind),
            ("code_hash", self.code_hash),
            ("tenant", self.tenant),
            ("single_tenant", str(self.single_tenant)),
            ("device_model", self.device_model),
        ]
        return base + list(self.extra)

    def digest(self) -> bytes:
        return _hash_items(self.items())


@dataclass(frozen=True)
class Quote:
    """A measurement signed by the device's root of trust."""

    measurement: Measurement
    device_id: str
    signature: bytes
    nonce: bytes = b""


class HardwareRootOfTrust:
    """Holds per-device secret keys; the only party able to sign quotes.

    In real hardware the key never leaves the die; here it never leaves
    this object.  The provider's control plane asks the RoT to quote, and a
    *dishonest* provider can at worst present a quote for what it actually
    launched — it cannot forge one for what it promised.
    """

    def __init__(self, seed: bytes = b"udc-root"):
        self._seed = seed
        self._keys: Dict[str, bytes] = {}

    def provision(self, device: Device) -> None:
        """Fuse a key into ``device`` (idempotent)."""
        if device.device_id not in self._keys:
            self._keys[device.device_id] = hashlib.sha256(
                self._seed + device.device_id.encode("utf-8")
            ).digest()

    def quote(
        self, device: Device, measurement: Measurement, nonce: bytes = b""
    ) -> Quote:
        if device.device_id not in self._keys:
            raise AttestationError(f"device {device.device_id} not provisioned")
        key = self._keys[device.device_id]
        signature = hmac.new(key, measurement.digest() + nonce, hashlib.sha256).digest()
        return Quote(
            measurement=measurement,
            device_id=device.device_id,
            signature=signature,
            nonce=nonce,
        )

    def _verification_key(self, device_id: str) -> Optional[bytes]:
        """The verifier-side key.

        HMAC is symmetric, so verification uses the same key; this stands
        in for the asymmetric verify-with-public-cert of real TEEs.  The
        verifier only receives it through :meth:`Verifier.trust_device`,
        modelling certificate distribution by the hardware manufacturer.
        """
        return self._keys.get(device_id)


@dataclass
class Verifier:
    """User-side quote verification against an expectation policy."""

    root: HardwareRootOfTrust
    trusted_devices: Dict[str, bytes] = field(default_factory=dict)

    def trust_device(self, device: Device) -> None:
        """Obtain the manufacturer-certified verification key for a device."""
        key = self.root._verification_key(device.device_id)
        if key is None:
            raise AttestationError(f"no certificate for {device.device_id}")
        self.trusted_devices[device.device_id] = key

    def verify(
        self,
        quote: Quote,
        expected: Dict[str, str],
        nonce: bytes = b"",
    ) -> None:
        """Check signature freshness and that measured properties match
        ``expected``.  Raises :class:`AttestationError` on any mismatch.

        Keys of ``expected`` outside :data:`ATTESTABLE_PROPERTIES` raise
        immediately: the user is asking to verify something the hardware
        cannot measure (the paper's C13 limitation).
        """
        unattestable = set(expected) - ATTESTABLE_PROPERTIES
        if unattestable:
            raise AttestationError(
                f"properties not covered by remote attestation: "
                f"{sorted(unattestable)}"
            )
        key = self.trusted_devices.get(quote.device_id)
        if key is None:
            raise AttestationError(f"untrusted device {quote.device_id}")
        if quote.nonce != nonce:
            raise AttestationError("stale quote: nonce mismatch (replay?)")
        want = hmac.new(
            key, quote.measurement.digest() + nonce, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(want, quote.signature):
            raise AttestationError("quote signature invalid")
        measured = dict(quote.measurement.items())
        for name, value in expected.items():
            if measured.get(name) != value:
                raise AttestationError(
                    f"measured {name}={measured.get(name)!r}, "
                    f"expected {value!r}"
                )

    def can_verify(self, property_name: str) -> bool:
        return property_name in ATTESTABLE_PROPERTIES
