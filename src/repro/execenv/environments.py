"""Execution-environment kinds and their cost/capability profiles.

Startup times and runtime overheads are calibrated to the published numbers
for the systems the paper cites (§3.3): Firecracker microVMs boot in
~125 ms, unikernels in tens of milliseconds, gVisor adds noticeable syscall
overhead, SGX enclave creation takes seconds for large EPC sizes, and full
VMs take tens of seconds.  Only the *relative* shape matters for the
benchmarks (E4/E5); absolute values are documented per profile.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.execenv.isolation import IsolationLevel, Threat
from repro.hardware.devices import DeviceType
from repro.hardware.pools import Allocation

__all__ = [
    "ENV_PROFILES",
    "EnvKind",
    "EnvProfile",
    "EnvState",
    "ExecutionEnvironment",
    "environments_for_level",
]


class EnvKind(enum.Enum):
    """Concrete environment mechanisms named in §3.3."""

    BARE_METAL = "bare-metal"             # dedicated hardware, no virtualization
    SGX_ENCLAVE = "sgx-enclave"           # process-level TEE (CPU only)
    SEV_VM = "sev-vm"                     # VM-level TEE (CPU only)
    VM = "vm"                             # full virtual machine
    MICRO_VM = "micro-vm"                 # Firecracker-style lightweight VM
    UNIKERNEL = "unikernel"               # library OS image
    SANDBOXED_CONTAINER = "sandboxed-container"  # gVisor-style
    CONTAINER = "container"               # plain namespaced container


@dataclass(frozen=True)
class EnvProfile:
    """Static cost/capability model of one environment kind.

    Attributes:
        cold_start_s: time from request to runnable with no warm instance.
        warm_start_s: time when resuming a pre-started instance from a warm
            pool (vertical bundling, Principle 3).
        teardown_s: time to destroy/scrub the environment.
        cpu_overhead: multiplier on compute time while inside the
            environment (1.0 = native).
        mem_overhead_gb: fixed memory footprint of the environment itself.
        isolation: the tier this mechanism provides.
        covers: threats defended against by this mechanism alone (single
            tenancy can extend coverage at allocation time).
        requires_device: device types this mechanism can host on (TEEs are
            CPU-only today — the §3.3 challenge that UDC must combine TEEs
            with GPUs/FPGAs).
        attestable: whether launch produces a hardware-rooted measurement.
    """

    kind: EnvKind
    cold_start_s: float
    warm_start_s: float
    teardown_s: float
    cpu_overhead: float
    mem_overhead_gb: float
    isolation: IsolationLevel
    covers: FrozenSet[Threat]
    requires_device: FrozenSet[DeviceType]
    attestable: bool


_ANY_COMPUTE = frozenset(
    {DeviceType.CPU, DeviceType.GPU, DeviceType.FPGA, DeviceType.TPU, DeviceType.ASIC}
)
_CPU_ONLY = frozenset({DeviceType.CPU})

ENV_PROFILES: Dict[EnvKind, EnvProfile] = {
    EnvKind.BARE_METAL: EnvProfile(
        kind=EnvKind.BARE_METAL,
        cold_start_s=90.0,     # full provision + scrub of a dedicated unit
        warm_start_s=0.5,
        teardown_s=30.0,
        cpu_overhead=1.0,
        mem_overhead_gb=0.0,
        isolation=IsolationLevel.STRONG,
        covers=frozenset({Threat.HW_SIDE_CHANNEL, Threat.CO_TENANT_ESCAPE}),
        requires_device=_ANY_COMPUTE,
        attestable=True,
    ),
    EnvKind.SGX_ENCLAVE: EnvProfile(
        kind=EnvKind.SGX_ENCLAVE,
        cold_start_s=2.0,      # EPC page initialization dominates
        warm_start_s=0.05,
        teardown_s=0.2,
        cpu_overhead=1.35,     # EPC paging / transition costs
        mem_overhead_gb=0.1,
        isolation=IsolationLevel.STRONG,
        covers=frozenset({Threat.SYSTEM_SOFTWARE, Threat.PHYSICAL}),
        requires_device=_CPU_ONLY,
        attestable=True,
    ),
    EnvKind.SEV_VM: EnvProfile(
        kind=EnvKind.SEV_VM,
        cold_start_s=40.0,     # full VM boot + memory encryption setup
        warm_start_s=1.0,
        teardown_s=5.0,
        cpu_overhead=1.08,
        mem_overhead_gb=0.5,
        isolation=IsolationLevel.STRONG,
        covers=frozenset({Threat.SYSTEM_SOFTWARE, Threat.PHYSICAL}),
        requires_device=_CPU_ONLY,
        attestable=True,
    ),
    EnvKind.VM: EnvProfile(
        kind=EnvKind.VM,
        cold_start_s=30.0,
        warm_start_s=1.0,
        teardown_s=5.0,
        cpu_overhead=1.05,
        mem_overhead_gb=0.5,
        isolation=IsolationLevel.MEDIUM,
        covers=frozenset({Threat.CO_TENANT_ESCAPE}),
        requires_device=_ANY_COMPUTE,
        attestable=False,
    ),
    EnvKind.MICRO_VM: EnvProfile(
        kind=EnvKind.MICRO_VM,
        cold_start_s=0.125,    # Firecracker's published boot time
        warm_start_s=0.01,
        teardown_s=0.05,
        cpu_overhead=1.03,
        mem_overhead_gb=0.05,
        isolation=IsolationLevel.MEDIUM,
        covers=frozenset({Threat.CO_TENANT_ESCAPE}),
        requires_device=_CPU_ONLY,
        attestable=False,
    ),
    EnvKind.UNIKERNEL: EnvProfile(
        kind=EnvKind.UNIKERNEL,
        cold_start_s=0.03,
        warm_start_s=0.005,
        teardown_s=0.01,
        cpu_overhead=0.98,     # specialized library OS beats general-purpose
        mem_overhead_gb=0.02,
        isolation=IsolationLevel.MEDIUM,
        covers=frozenset({Threat.CO_TENANT_ESCAPE}),
        requires_device=_CPU_ONLY,
        attestable=False,
    ),
    EnvKind.SANDBOXED_CONTAINER: EnvProfile(
        kind=EnvKind.SANDBOXED_CONTAINER,
        cold_start_s=1.0,      # gVisor sandbox + image setup
        warm_start_s=0.05,
        teardown_s=0.1,
        cpu_overhead=1.15,     # intercepted syscalls
        mem_overhead_gb=0.05,
        isolation=IsolationLevel.MEDIUM,
        covers=frozenset({Threat.CO_TENANT_ESCAPE}),
        requires_device=_CPU_ONLY,
        attestable=False,
    ),
    EnvKind.CONTAINER: EnvProfile(
        kind=EnvKind.CONTAINER,
        cold_start_s=0.5,      # image pull amortized; namespace setup
        warm_start_s=0.02,
        teardown_s=0.05,
        cpu_overhead=1.0,
        mem_overhead_gb=0.01,
        isolation=IsolationLevel.WEAK,
        covers=frozenset(),
        requires_device=_ANY_COMPUTE,
        attestable=False,
    ),
}


def environments_for_level(
    level: IsolationLevel, device_type: DeviceType
) -> List[EnvProfile]:
    """Mechanisms that can fulfill ``level`` on ``device_type``.

    STRONGEST requires a TEE *and* single tenancy; since today's TEEs are
    CPU-only (§3.3's challenge), STRONGEST on non-CPU devices falls back to
    physically-isolated bare metal — the paper's proposed alternative
    ("physically-isolated (disaggregated) device clusters ... occupied by
    one tenant at a time").
    """
    if level == IsolationLevel.STRONGEST:
        if device_type == DeviceType.CPU:
            kinds = [EnvKind.SGX_ENCLAVE, EnvKind.SEV_VM]
        else:
            kinds = [EnvKind.BARE_METAL]
    elif level == IsolationLevel.STRONG:
        if device_type == DeviceType.CPU:
            kinds = [EnvKind.SGX_ENCLAVE, EnvKind.SEV_VM, EnvKind.BARE_METAL]
        else:
            kinds = [EnvKind.BARE_METAL]
    elif level == IsolationLevel.MEDIUM:
        if device_type == DeviceType.CPU:
            kinds = [EnvKind.UNIKERNEL, EnvKind.MICRO_VM, EnvKind.SANDBOXED_CONTAINER,
                     EnvKind.VM]
        else:
            kinds = [EnvKind.VM]
    elif level == IsolationLevel.WEAK:
        kinds = [EnvKind.CONTAINER]
    else:  # NONE: provider default is a plain container
        kinds = [EnvKind.CONTAINER]
    return [
        ENV_PROFILES[k]
        for k in kinds
        if device_type in ENV_PROFILES[k].requires_device
    ]


class EnvState(enum.Enum):
    COLD = "cold"
    STARTING = "starting"
    RUNNING = "running"
    STOPPED = "stopped"


_env_ids = itertools.count()


@dataclass
class ExecutionEnvironment:
    """A launched environment instance bound to hardware allocations."""

    profile: EnvProfile
    tenant: str
    allocations: List[Allocation] = field(default_factory=list)
    single_tenant: bool = False
    env_id: str = field(default="")
    state: EnvState = EnvState.COLD
    started_at: Optional[float] = None
    #: set by attestation at launch when the profile is attestable
    measurement: Optional[object] = None
    #: True when taken from a warm pool (bundling) rather than cold-started
    from_warm_pool: bool = False

    def __post_init__(self):
        if not self.env_id:
            self.env_id = f"env-{self.profile.kind.value}-{next(_env_ids)}"

    @property
    def kind(self) -> EnvKind:
        return self.profile.kind

    @property
    def effective_coverage(self) -> FrozenSet[Threat]:
        """Mechanism coverage plus single-tenancy's side-channel coverage."""
        covers = set(self.profile.covers)
        if self.single_tenant:
            covers.add(Threat.HW_SIDE_CHANNEL)
            covers.add(Threat.CO_TENANT_ESCAPE)
        return frozenset(covers)

    @property
    def effective_isolation(self) -> IsolationLevel:
        """TEE + single tenancy composes to the strongest tier (§3.3)."""
        tee = self.kind in (EnvKind.SGX_ENCLAVE, EnvKind.SEV_VM)
        if tee and self.single_tenant:
            return IsolationLevel.STRONGEST
        return self.profile.isolation

    def startup_time(self) -> float:
        return (
            self.profile.warm_start_s
            if self.from_warm_pool
            else self.profile.cold_start_s
        )

    def compute_time(self, native_seconds: float) -> float:
        """Wall time for ``native_seconds`` of work inside this env."""
        return native_seconds * self.profile.cpu_overhead
