"""Warm pools of pre-started environments (vertical bundling, Principle 3).

The paper's answer to secure-environment cold starts (§3.3) is Principle
3's *vertical bundling*: the provider pre-assembles "self-sustained
resource units" — a compute grain + an execution environment + the distsem
library — and hands modules an already-warm unit instead of cold-starting
one per module.

:class:`WarmPool` is the mechanism: it holds pre-started
:class:`~repro.execenv.environments.ExecutionEnvironment` shells keyed by
(environment kind, single-tenancy).  Benchmark E5 toggles it on/off to
measure how much cold-start latency bundling removes for a many-module
application.

Shelf depths default to a flat ``target_depth``; the economic autopilot
(:class:`~repro.economics.autopilot.WarmPoolForecaster`) can instead set
per-key targets (:meth:`WarmPool.set_target`) from forecast demand and
subscribe to demand events via :attr:`WarmPool.observer`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, DefaultDict, Dict, List, Optional, Tuple

from repro.execenv.environments import ENV_PROFILES, EnvKind, ExecutionEnvironment

__all__ = ["WarmPool", "WarmPoolStats"]

PoolKey = Tuple[EnvKind, bool]  # (kind, single_tenant)


def _key_order(key: PoolKey) -> Tuple[str, bool]:
    """Deterministic iteration order for shelf keys (enum-safe)."""
    return (key[0].value, key[1])


@dataclass
class WarmPoolStats:
    """Hit accounting for the bundling ablation (E5) and the E22 outage."""

    hits: int = 0
    misses: int = 0
    prewarmed: int = 0
    #: cold-start seconds avoided by hits
    startup_seconds_saved: float = 0.0
    #: misses that occurred while an injected outage held the pool empty
    #: (a subset of ``misses`` — the chaos harness attributes these to
    #: the fault, not to under-provisioning)
    outage_misses: int = 0
    #: prewarm requests suppressed because an outage was in progress
    prewarms_deferred: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class WarmPool:
    """A cache of pre-started environment shells.

    The pool stores *shells*: environments whose mechanism has booted but
    which are not yet bound to a tenant's code or hardware allocations.
    Acquiring from the pool re-binds the shell (at ``warm_start_s``) rather
    than booting from scratch (``cold_start_s``).

    ``target_depth`` is how many shells of each requested key the provider
    keeps ready; the background refill is modeled as free provider work
    (its cost shows up in the provider-economics model, not in tenant
    latency — exactly the trade the paper describes).  Per-key overrides
    (:meth:`set_target`) let a forecaster size individual shelves.
    """

    def __init__(self, target_depth: int = 2, enabled: bool = True):
        if target_depth < 0:
            raise ValueError("target_depth must be >= 0")
        self.target_depth = target_depth
        self.enabled = enabled
        self._shelves: DefaultDict[PoolKey, List[EnvKind]] = defaultdict(list)
        self.stats = WarmPoolStats()
        #: keys ever requested; refill keeps these stocked
        self._known_keys: Dict[PoolKey, None] = {}
        #: True during an injected warm-pool outage (see exhaust())
        self._exhausted = False
        #: prewarms deferred by an outage, replayed exactly once by
        #: restore() — refill never re-counts them (they are not targets)
        self._deferred: Dict[PoolKey, int] = {}
        #: per-key depth targets set by a forecaster; keys absent here
        #: fall back to ``target_depth``
        self._targets: Dict[PoolKey, int] = {}
        #: optional Telemetry sink (wired by the runtime): hit/miss/outage
        #: counters and the hit-rate gauge are maintained incrementally
        self.telemetry = None
        #: optional demand subscriber called on every try_acquire with
        #: (kind, single_tenant) — how the autopilot forecaster observes
        #: warm-environment demand without the pool knowing about it
        self.observer: Optional[Callable[[EnvKind, bool], None]] = None

    def _record_acquire(self, hit: bool, outage: bool) -> None:
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.inc("udc_warm_pool_hits_total" if hit
                      else "udc_warm_pool_misses_total")
        if outage:
            telemetry.inc("udc_warm_pool_outage_misses_total")
        telemetry.gauge_set("udc_warm_pool_hit_rate", self.stats.hit_rate)

    def prewarm(self, kind: EnvKind, single_tenant: bool, count: int = 1) -> None:
        """Stock ``count`` shells of the given shape.

        During an injected outage (:meth:`exhaust`) the request is
        *deferred*: the key is remembered and the count banked, and
        :meth:`restore` replays the banked shells exactly once — an
        explicit prewarm must not silently undo the chaos scenario
        (E22), but neither may the provider forget work it accepted.
        """
        key = (kind, single_tenant)
        self._known_keys[key] = None
        if self._exhausted:
            self.stats.prewarms_deferred += count
            self._deferred[key] = self._deferred.get(key, 0) + count
            return
        for _ in range(count):
            self._shelves[key].append(kind)
            self.stats.prewarmed += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc("udc_warm_pool_prewarmed_total", count)

    def try_acquire(self, kind: EnvKind, single_tenant: bool) -> bool:
        """Take a shell if available.  Returns True on a hit.

        Single-tenant requests can never reuse a multi-tenant shell and
        vice versa (the shell's tenancy is part of its hardware pinning).
        """
        key = (kind, single_tenant)
        self._known_keys[key] = None
        if self.observer is not None:
            self.observer(kind, single_tenant)
        if not self.enabled:
            self.stats.misses += 1
            self._record_acquire(hit=False, outage=False)
            return False
        shelf = self._shelves.get(key)
        if shelf:
            shelf.pop()
            profile = ENV_PROFILES[kind]
            self.stats.hits += 1
            self.stats.startup_seconds_saved += (
                profile.cold_start_s - profile.warm_start_s
            )
            self._record_acquire(hit=True, outage=False)
            return True
        self.stats.misses += 1
        if self._exhausted:
            self.stats.outage_misses += 1
        self._record_acquire(hit=False, outage=self._exhausted)
        return False

    def target_for(self, kind: EnvKind, single_tenant: bool) -> int:
        """The refill depth for one shelf (override, or the flat default)."""
        return self._targets.get((kind, single_tenant), self.target_depth)

    def set_target(self, kind: EnvKind, single_tenant: bool,
                   depth: Optional[int]) -> None:
        """Set (or clear, with None) a per-key refill depth override."""
        key = (kind, single_tenant)
        if depth is None:
            self._targets.pop(key, None)
            return
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self._known_keys[key] = None
        self._targets[key] = depth

    def refill(self) -> int:
        """Restock every known key to its target depth; returns shells added.

        The runtime calls this between scheduling rounds, modelling the
        provider's background pre-warming loop.  Deferred outage
        prewarms are NOT re-added here — :meth:`restore` already
        replayed them, and counting them against the target again would
        double-stock the shelf.
        """
        if not self.enabled or self._exhausted:
            return 0
        added = 0
        for key in sorted(self._known_keys, key=_key_order):
            shelf = self._shelves[key]
            goal = self.target_for(*key)
            while len(shelf) < goal:
                shelf.append(key[0])
                self.stats.prewarmed += 1
                added += 1
        if added and self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc("udc_warm_pool_prewarmed_total", added)
        return added

    def exhaust(self) -> int:
        """Drop every stocked shell and suspend refills (gray failure, E22).

        Models a provider-side warm-pool outage: until :meth:`restore` is
        called, every acquire cold-starts.  Returns shells discarded.
        """
        dropped = sum(len(shelf) for shelf in self._shelves.values())
        self._shelves.clear()
        self._exhausted = True
        return dropped

    def restore(self) -> int:
        """Lift an :meth:`exhaust` outage and replay deferred prewarms.

        Each prewarm banked during the outage lands on its shelf exactly
        once (counted once in ``stats.prewarmed``); the bank is then
        cleared so a racing :meth:`refill` cannot stock the same shells
        a second time.  Returns the shells replayed.
        """
        self._exhausted = False
        replayed = 0
        for key in sorted(self._deferred, key=_key_order):
            count = self._deferred[key]
            shelf = self._shelves[key]
            for _ in range(count):
                shelf.append(key[0])
                self.stats.prewarmed += 1
                replayed += 1
        self._deferred.clear()
        if replayed and self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.inc("udc_warm_pool_prewarmed_total", replayed)
        return replayed

    def depth(self, kind: EnvKind, single_tenant: bool) -> int:
        return len(self._shelves.get((kind, single_tenant), ()))

    def bind(self, env: ExecutionEnvironment) -> ExecutionEnvironment:
        """Mark ``env`` as having come from this pool (warm start timing)."""
        env.from_warm_pool = True
        return env
