"""Isolation tiers and the threat taxonomy (paper §3.3).

The paper defines four tiers and is explicit about what each protects
against and whether the *user* can verify it without trusting the provider:

* **strongest** — single-tenant TEE: protects against system-software
  attacks, physical attacks, *and* hardware side channels (single tenancy
  removes co-resident attackers).  User-verifiable.
* **strong** — TEE *or* single-tenant: protects against a subset of the
  above.  User-verifiable.
* **medium** — provider's choice of unikernel / lightweight VM / sandboxed
  container.  Requires trusting the provider's system software.
* **weak** — containers.  Requires trusting the provider.
"""

from __future__ import annotations

import enum
from typing import FrozenSet

__all__ = ["IsolationLevel", "Threat", "coverage_for", "verifiable_by_user"]


class Threat(enum.Enum):
    """Attack classes from §3.3 and the side-channel literature it cites."""

    SYSTEM_SOFTWARE = "system-software"     # malicious/compromised host OS or hypervisor
    PHYSICAL = "physical"                   # bus snooping, cold-boot, DMA
    HW_SIDE_CHANNEL = "hw-side-channel"     # co-resident cache/timing attacks
    CO_TENANT_ESCAPE = "co-tenant-escape"   # container/VM escape from a co-tenant
    NETWORK_SNOOPING = "network-snooping"   # data observed in flight
    STORAGE_TAMPERING = "storage-tampering" # data modified/replayed at rest


class IsolationLevel(enum.Enum):
    """The paper's four tiers, plus NONE for the bare provider default."""

    STRONGEST = "strongest"
    STRONG = "strong"
    MEDIUM = "medium"
    WEAK = "weak"
    NONE = "none"

    @property
    def rank(self) -> int:
        """Higher is stricter; used by strictest-wins conflict resolution."""
        return _RANK[self]

    def at_least(self, other: "IsolationLevel") -> bool:
        return self.rank >= other.rank


_RANK = {
    IsolationLevel.NONE: 0,
    IsolationLevel.WEAK: 1,
    IsolationLevel.MEDIUM: 2,
    IsolationLevel.STRONG: 3,
    IsolationLevel.STRONGEST: 4,
}

_COVERAGE = {
    IsolationLevel.STRONGEST: frozenset(
        {Threat.SYSTEM_SOFTWARE, Threat.PHYSICAL, Threat.HW_SIDE_CHANNEL,
         Threat.CO_TENANT_ESCAPE}
    ),
    # strong = TEE (system software + physical) or single-tenant
    # (side channels + escape); we report the TEE variant's coverage as the
    # tier's guarantee since either satisfies "a subset".
    IsolationLevel.STRONG: frozenset(
        {Threat.SYSTEM_SOFTWARE, Threat.PHYSICAL}
    ),
    IsolationLevel.MEDIUM: frozenset({Threat.CO_TENANT_ESCAPE}),
    IsolationLevel.WEAK: frozenset(),
    IsolationLevel.NONE: frozenset(),
}


def coverage_for(level: IsolationLevel) -> FrozenSet[Threat]:
    """Threats an environment at ``level`` defends against by construction."""
    return _COVERAGE[level]


def verifiable_by_user(level: IsolationLevel) -> bool:
    """Whether fulfillment at this tier is attestable without trusting the
    provider (§3.3: only the strongest/strong tiers are)."""
    return level in (IsolationLevel.STRONGEST, IsolationLevel.STRONG)
