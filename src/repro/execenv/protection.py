"""Data protection when data leaves an execution environment (paper §3.3).

Users *"could also specify protection options for their data (e.g.,
encryption, integrity protection, and replay protection) when these data
leave the execution environment (to the network, storage, or another
module)."*

:class:`SecureChannel` implements all three over real primitives:

* **confidentiality** — a SHA-256-keystream stream cipher (CTR-style).
  This is not a production cipher, but it is a real keystream XOR, so
  tests can demonstrate that ciphertext reveals nothing positional and
  that the wrong key yields garbage;
* **integrity** — HMAC-SHA256 over (header, ciphertext); any bit flip is
  detected;
* **replay protection** — a monotonic per-channel sequence number bound
  into the MAC; re-delivering an old blob is detected.

Each option is individually switchable so benchmark T1 can check that
exactly the Table-1-requested protections were applied, and E4 can charge
their (modeled) CPU cost.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

__all__ = ["IntegrityError", "ProtectedBlob", "ProtectionPolicy", "SecureChannel"]

#: Modeled CPU cost of protection, in seconds per MB processed (AES-NI-era
#: software crypto runs at ~GB/s; HMAC similar).  Used by the runtime to
#: charge protection overhead to module execution time.
ENCRYPT_S_PER_MB = 0.0008
MAC_S_PER_MB = 0.0005


class IntegrityError(Exception):
    """Raised when MAC verification or replay detection fails."""


@dataclass(frozen=True)
class ProtectionPolicy:
    """Which protections a data module requests for data in flight/at rest."""

    encrypt: bool = False
    integrity: bool = False
    replay_protect: bool = False

    @property
    def any_enabled(self) -> bool:
        return self.encrypt or self.integrity or self.replay_protect

    def cpu_seconds(self, size_bytes: int) -> float:
        """Modeled protection cost for ``size_bytes`` of payload."""
        mb = size_bytes / 1e6
        cost = 0.0
        if self.encrypt:
            cost += ENCRYPT_S_PER_MB * mb
        if self.integrity or self.replay_protect:
            cost += MAC_S_PER_MB * mb
        return cost

    def strictest(self, other: "ProtectionPolicy") -> "ProtectionPolicy":
        """Union of protections (strictest-wins composition, §3.4)."""
        return ProtectionPolicy(
            encrypt=self.encrypt or other.encrypt,
            integrity=self.integrity or other.integrity,
            replay_protect=self.replay_protect or other.replay_protect,
        )


@dataclass(frozen=True)
class ProtectedBlob:
    """Wire/storage format produced by :meth:`SecureChannel.protect`."""

    body: bytes
    encrypted: bool
    mac: Optional[bytes]
    sequence: Optional[int]

    @property
    def size_bytes(self) -> int:
        overhead = (32 if self.mac else 0) + (8 if self.sequence is not None else 0)
        return len(self.body) + overhead


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream."""
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(
            hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        )
        counter += 1
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


class SecureChannel:
    """A unidirectional protected channel between two endpoints.

    Both endpoints derive the same keys from the shared ``secret`` (in a
    real deployment this comes from attested key exchange; the attestation
    module provides the trust anchor for that handshake).
    """

    def __init__(self, secret: bytes, policy: ProtectionPolicy, channel_id: str = ""):
        self.policy = policy
        self.channel_id = channel_id
        self._enc_key = hashlib.sha256(b"enc" + secret).digest()
        self._mac_key = hashlib.sha256(b"mac" + secret).digest()
        self._send_seq = 0
        self._recv_seq = 0

    # -- sender side -------------------------------------------------------

    def protect(self, plaintext: bytes) -> ProtectedBlob:
        sequence: Optional[int] = None
        if self.policy.replay_protect:
            sequence = self._send_seq
            self._send_seq += 1

        if self.policy.encrypt:
            nonce = (sequence or 0).to_bytes(8, "big") + self.channel_id.encode()
            body = _xor(plaintext, _keystream(self._enc_key, nonce, len(plaintext)))
        else:
            body = plaintext

        mac: Optional[bytes] = None
        if self.policy.integrity or self.policy.replay_protect:
            mac = self._mac(body, sequence)
        return ProtectedBlob(
            body=body,
            encrypted=self.policy.encrypt,
            mac=mac,
            sequence=sequence,
        )

    # -- receiver side -----------------------------------------------------

    def unprotect(self, blob: ProtectedBlob) -> bytes:
        if blob.mac is not None:
            want = self._mac(blob.body, blob.sequence)
            if not hmac.compare_digest(want, blob.mac):
                raise IntegrityError("MAC mismatch: data was tampered with")
        elif self.policy.integrity or self.policy.replay_protect:
            raise IntegrityError("blob is missing a required MAC")

        if self.policy.replay_protect:
            if blob.sequence is None:
                raise IntegrityError("blob is missing a required sequence number")
            if blob.sequence < self._recv_seq:
                raise IntegrityError(
                    f"replay detected: sequence {blob.sequence} < {self._recv_seq}"
                )
            self._recv_seq = blob.sequence + 1

        if blob.encrypted:
            if not self.policy.encrypt:
                raise IntegrityError("unexpected ciphertext on plaintext channel")
            nonce = (blob.sequence or 0).to_bytes(8, "big") + self.channel_id.encode()
            return _xor(blob.body, _keystream(self._enc_key, nonce, len(blob.body)))
        return blob.body

    def _mac(self, body: bytes, sequence: Optional[int]) -> bytes:
        message = body
        if sequence is not None:
            message = sequence.to_bytes(8, "big") + message
        return hmac.new(self._mac_key, message, hashlib.sha256).digest()
