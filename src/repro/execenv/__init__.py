"""Execution environments and security (paper §3.3).

UDC lets each module name its execution environment and security
requirements concretely — *"security features should not be specified in a
declarative way"* — so that fulfillment is verifiable.  This package
provides:

* :mod:`~repro.execenv.isolation` — the paper's four isolation tiers
  (strongest / strong / medium / weak) and the threat taxonomy each tier
  covers;
* :mod:`~repro.execenv.environments` — environment kinds (bare metal, VM,
  microVM, unikernel, sandboxed container, container, SGX-like enclave,
  SEV-like confidential VM) with startup-cost and runtime-overhead
  profiles calibrated from the systems the paper cites (Firecracker,
  unikernels, gVisor, SGX);
* :mod:`~repro.execenv.attestation` — a simulated hardware root of trust:
  measurement chains, signed quotes, and a verifier that checks quotes
  without trusting the provider (§4);
* :mod:`~repro.execenv.protection` — confidentiality / integrity / replay
  protection for data leaving an environment;
* :mod:`~repro.execenv.warmpool` — pre-started environment pools, the
  mechanism behind vertical bundling's cold-start mitigation (E5).
"""

from repro.execenv.attestation import (
    AttestationError,
    HardwareRootOfTrust,
    Measurement,
    Quote,
    Verifier,
)
from repro.execenv.environments import (
    ENV_PROFILES,
    EnvKind,
    EnvProfile,
    EnvState,
    ExecutionEnvironment,
    environments_for_level,
)
from repro.execenv.isolation import IsolationLevel, Threat, coverage_for
from repro.execenv.protection import (
    IntegrityError,
    ProtectedBlob,
    ProtectionPolicy,
    SecureChannel,
)
from repro.execenv.warmpool import WarmPool

__all__ = [
    "ENV_PROFILES",
    "AttestationError",
    "EnvKind",
    "EnvProfile",
    "EnvState",
    "ExecutionEnvironment",
    "HardwareRootOfTrust",
    "IntegrityError",
    "IsolationLevel",
    "Measurement",
    "ProtectedBlob",
    "ProtectionPolicy",
    "Quote",
    "SecureChannel",
    "Threat",
    "Verifier",
    "WarmPool",
    "coverage_for",
    "environments_for_level",
]
