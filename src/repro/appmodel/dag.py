"""The module DAG with locality relationships (paper §3.1).

Edges carry the bytes that flow between modules; two locality mechanisms
from the paper are first-class:

* **co-location groups** — *"computation tasks that should be executed
  together on the same hardware unit (e.g., A1 and A2)"*;
* **affinity hints** — *"a data object (e.g., S1) is frequently used by a
  computation task (e.g., A3)"*, weighted by expected access volume.

Validation catches the mistakes a user-facing control plane must reject:
cycles, dangling edge endpoints, co-location groups spanning incompatible
device candidates, and task→task edges declared through a data module that
neither endpoint touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

import networkx as nx

from repro.appmodel.module import DataModule, TaskModule

__all__ = ["DagValidationError", "Edge", "ModuleDAG"]

Module = Union[TaskModule, DataModule]


class DagValidationError(Exception):
    """Raised when an application DAG is structurally invalid."""


@dataclass(frozen=True)
class Edge:
    """A dependency: ``src`` must produce before ``dst`` consumes.

    ``bytes_transferred`` sizes the data movement the scheduler must place
    around; task→data edges model writes, data→task edges model reads.
    """

    src: str
    dst: str
    bytes_transferred: int = 1024


@dataclass
class ModuleDAG:
    """A complete UDC application description."""

    name: str
    modules: Dict[str, Module] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)
    #: sets of task names that must share a hardware unit
    colocate_groups: List[Set[str]] = field(default_factory=list)
    #: (task, data) -> access weight in bytes per run
    affinities: Dict[Tuple[str, str], int] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    def add_module(self, module: Module) -> Module:
        if module.name in self.modules:
            raise DagValidationError(f"duplicate module name {module.name!r}")
        self.modules[module.name] = module
        return module

    def add_edge(self, src: str, dst: str, bytes_transferred: int = 1024) -> Edge:
        edge = Edge(src=src, dst=dst, bytes_transferred=bytes_transferred)
        self.edges.append(edge)
        return edge

    def colocate(self, *names: str) -> None:
        """Require the named tasks to run on the same hardware unit."""
        if len(names) < 2:
            raise DagValidationError("colocate needs at least two modules")
        self.colocate_groups.append(set(names))

    def affine(self, task: str, data: str, weight_bytes: int = 1 << 20) -> None:
        """Hint that ``task`` frequently accesses ``data``."""
        self.affinities[(task, data)] = weight_bytes

    # -- accessors ------------------------------------------------------------

    def task(self, name: str) -> TaskModule:
        module = self.modules[name]
        if not isinstance(module, TaskModule):
            raise KeyError(f"{name!r} is not a task module")
        return module

    def data(self, name: str) -> DataModule:
        module = self.modules[name]
        if not isinstance(module, DataModule):
            raise KeyError(f"{name!r} is not a data module")
        return module

    @property
    def tasks(self) -> List[TaskModule]:
        return [m for m in self.modules.values() if isinstance(m, TaskModule)]

    @property
    def data_modules(self) -> List[DataModule]:
        return [m for m in self.modules.values() if isinstance(m, DataModule)]

    def predecessors(self, name: str) -> List[str]:
        return [e.src for e in self.edges if e.dst == name]

    def successors(self, name: str) -> List[str]:
        return [e.dst for e in self.edges if e.src == name]

    def colocation_group_of(self, name: str) -> Optional[Set[str]]:
        for group in self.colocate_groups:
            if name in group:
                return group
        return None

    # -- graph views ------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        graph = nx.DiGraph(name=self.name)
        for module_name, module in self.modules.items():
            graph.add_node(module_name, kind=module.kind.value)
        for edge in self.edges:
            graph.add_edge(edge.src, edge.dst, bytes=edge.bytes_transferred)
        return graph

    def effective_task_graph(self) -> nx.DiGraph:
        """Dependencies between *task* modules only.

        Two kinds of edges:

        * direct task→task edges;
        * data-induced edges: a task that writes a data module happens
          before a task that reads it — *unless* that ordering would
          create a cycle (e.g. Figure 2's A4 writes S1 while its own
          upstream A3 reads S1: the write-back is a later round, not a
          dependency of this run).

        Induced edges are considered in sorted order so the result is
        deterministic.
        """
        graph = self.to_networkx()
        task_names = {t.name for t in self.tasks}
        task_graph = nx.DiGraph()
        task_graph.add_nodes_from(sorted(task_names))
        for edge in self.edges:
            if edge.src in task_names and edge.dst in task_names:
                task_graph.add_edge(edge.src, edge.dst)

        induced = []
        for data_name in sorted(
            m.name for m in self.modules.values() if isinstance(m, DataModule)
        ):
            writers = sorted(
                e.src for e in self.edges
                if e.dst == data_name and e.src in task_names
            )
            readers = sorted(
                e.dst for e in self.edges
                if e.src == data_name and e.dst in task_names
            )
            for writer in writers:
                for reader in readers:
                    if writer != reader:
                        induced.append((writer, reader))
        for writer, reader in sorted(set(induced)):
            if task_graph.has_edge(writer, reader):
                continue
            # Skip an induced edge that would close a cycle: the reader
            # already (transitively) precedes the writer.
            if reader in nx.ancestors(task_graph, writer) | {writer}:
                continue
            task_graph.add_edge(writer, reader, induced=True)
        return task_graph

    def task_stages(self) -> List[List[str]]:
        """Topological stages over *task* modules only.

        Data modules are standing state, not schedulable steps; a task's
        stage is its depth in :meth:`effective_task_graph`.
        """
        stages: List[List[str]] = []
        for generation in nx.topological_generations(self.effective_task_graph()):
            stages.append(sorted(generation))
        return stages

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`DagValidationError` on any structural problem."""
        for edge in self.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in self.modules:
                    raise DagValidationError(
                        f"edge {edge.src}->{edge.dst} references unknown "
                        f"module {endpoint!r}"
                    )
            if edge.bytes_transferred < 0:
                raise DagValidationError(
                    f"edge {edge.src}->{edge.dst} has negative transfer size"
                )

        for edge in self.edges:
            if edge.src == edge.dst:
                raise DagValidationError(f"self-loop on module {edge.src!r}")

        # Cycles through *data* modules are legal — a task may write back
        # to state an upstream task read (Figure 2: A4 appends the
        # diagnosis to S1, which A3 read); data modules are standing
        # state, not one-shot dataflow.  Direct task→task cycles are not.
        task_names = {t.name for t in self.tasks}
        direct = nx.DiGraph()
        direct.add_nodes_from(task_names)
        for edge in self.edges:
            if edge.src in task_names and edge.dst in task_names:
                direct.add_edge(edge.src, edge.dst)
        if not nx.is_directed_acyclic_graph(direct):
            cycle = nx.find_cycle(direct)
            raise DagValidationError(f"task graph has a cycle: {cycle}")

        for group in self.colocate_groups:
            unknown = group - set(self.modules)
            if unknown:
                raise DagValidationError(
                    f"colocate group references unknown modules {sorted(unknown)}"
                )
            members = [self.modules[n] for n in group]
            non_tasks = [m.name for m in members if not isinstance(m, TaskModule)]
            if non_tasks:
                raise DagValidationError(
                    f"colocate group may only contain tasks; got {non_tasks}"
                )
            shared = frozenset.intersection(
                *(m.device_candidates for m in members if isinstance(m, TaskModule))
            )
            if not shared:
                raise DagValidationError(
                    f"colocate group {sorted(group)} has no common device "
                    f"candidate — the tasks cannot share a hardware unit"
                )

        for (task_name, data_name) in self.affinities:
            if task_name not in self.modules or data_name not in self.modules:
                raise DagValidationError(
                    f"affinity ({task_name}, {data_name}) references unknown module"
                )
            if not isinstance(self.modules[task_name], TaskModule):
                raise DagValidationError(
                    f"affinity source {task_name!r} must be a task"
                )
            if not isinstance(self.modules[data_name], DataModule):
                raise DagValidationError(
                    f"affinity target {data_name!r} must be a data module"
                )

    def merged_colocation_groups(self) -> List[Set[str]]:
        """Union overlapping groups so 'A~B' and 'B~C' yields {A, B, C}."""
        merged: List[Set[str]] = []
        for group in self.colocate_groups:
            group = set(group)
            overlapping = [g for g in merged if g & group]
            for g in overlapping:
                group |= g
                merged.remove(g)
            merged.append(group)
        return merged
