"""Developer-facing annotation API (paper §3.1).

*"We could build libraries in different languages that offer annotations
for expressing module scopes and locality hints."*  This is that library
for Python: a :func:`task` decorator that turns a function into a
:class:`~repro.appmodel.module.TaskModule`, a :func:`data` declaration for
data modules, and an :class:`AppBuilder` that wires them into a validated
:class:`~repro.appmodel.dag.ModuleDAG`.

Example::

    app = AppBuilder("pipeline")

    @app.task(work=5.0, devices={DeviceType.GPU})
    def infer(image):
        return model(image)

    records = app.data("records", size_gb=10, hot=True)
    app.reads(infer, records, bytes_per_run=1 << 20)
"""

from __future__ import annotations

from typing import Callable, Optional, Set, Union

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.hardware.devices import DeviceType

__all__ = ["AppBuilder", "data", "task"]

ModuleRef = Union[str, TaskModule, DataModule, Callable]


def task(
    name: Optional[str] = None,
    work: float = 1.0,
    devices: Optional[Set[DeviceType]] = None,
    output_bytes: int = 1024,
    state_bytes: int = 1024,
    max_parallelism: Optional[float] = None,
    sanitizer: bool = False,
) -> Callable[[Callable], TaskModule]:
    """Standalone decorator: wrap a function as a TaskModule."""

    def wrap(fn: Callable) -> TaskModule:
        return TaskModule(
            name=name or fn.__name__,
            work=work,
            device_candidates=frozenset(devices or {DeviceType.CPU}),
            output_bytes=output_bytes,
            state_bytes=state_bytes,
            max_parallelism=max_parallelism,
            fn=fn,
            sanitizer=sanitizer,
        )

    return wrap


def data(name: str, size_gb: float = 1.0, record_bytes: int = 4096,
         hot: bool = False, sensitivity: Optional[str] = None) -> DataModule:
    """Standalone declaration of a data module."""
    return DataModule(name=name, size_gb=size_gb, record_bytes=record_bytes,
                      hot=hot, sensitivity=sensitivity)


def _name_of(ref: ModuleRef) -> str:
    if isinstance(ref, str):
        return ref
    if isinstance(ref, (TaskModule, DataModule)):
        return ref.name
    if callable(ref):
        return ref.__name__
    raise TypeError(f"cannot resolve module reference {ref!r}")


class AppBuilder:
    """Incrementally assemble a validated application DAG."""

    def __init__(self, name: str):
        self.dag = ModuleDAG(name=name)

    # -- module declaration ---------------------------------------------------

    def task(
        self,
        name: Optional[str] = None,
        work: float = 1.0,
        devices: Optional[Set[DeviceType]] = None,
        output_bytes: int = 1024,
        state_bytes: int = 1024,
        max_parallelism: Optional[float] = None,
        sanitizer: bool = False,
    ) -> Callable[[Callable], TaskModule]:
        """Decorator form: declare a task and register it with the app."""

        def wrap(fn: Callable) -> TaskModule:
            module = task(
                name=name, work=work, devices=devices,
                output_bytes=output_bytes, state_bytes=state_bytes,
                max_parallelism=max_parallelism, sanitizer=sanitizer,
            )(fn)
            self.dag.add_module(module)
            return module

        return wrap

    def add_task(self, module: TaskModule) -> TaskModule:
        self.dag.add_module(module)
        return module

    def data(self, name: str, size_gb: float = 1.0, record_bytes: int = 4096,
             hot: bool = False, sensitivity: Optional[str] = None) -> DataModule:
        module = data(name, size_gb=size_gb, record_bytes=record_bytes,
                      hot=hot, sensitivity=sensitivity)
        self.dag.add_module(module)
        return module

    # -- relationships ------------------------------------------------------------

    def flows(self, src: ModuleRef, dst: ModuleRef, bytes_: int = 1024) -> None:
        """Declare a dependency edge: src's output feeds dst."""
        self.dag.add_edge(_name_of(src), _name_of(dst), bytes_transferred=bytes_)

    def reads(self, task_ref: ModuleRef, data_ref: ModuleRef,
              bytes_per_run: int = 1 << 20) -> None:
        """Declare a data→task dependency plus an affinity hint."""
        task_name, data_name = _name_of(task_ref), _name_of(data_ref)
        self.dag.add_edge(data_name, task_name, bytes_transferred=bytes_per_run)
        self.dag.affine(task_name, data_name, weight_bytes=bytes_per_run)

    def writes(self, task_ref: ModuleRef, data_ref: ModuleRef,
               bytes_per_run: int = 1 << 20) -> None:
        """Declare a task→data dependency plus an affinity hint."""
        task_name, data_name = _name_of(task_ref), _name_of(data_ref)
        self.dag.add_edge(task_name, data_name, bytes_transferred=bytes_per_run)
        self.dag.affine(task_name, data_name, weight_bytes=bytes_per_run)

    def colocate(self, *refs: ModuleRef) -> None:
        self.dag.colocate(*[_name_of(r) for r in refs])

    # -- finalization ----------------------------------------------------------------

    def build(self) -> ModuleDAG:
        """Validate and return the DAG."""
        self.dag.validate()
        return self.dag
