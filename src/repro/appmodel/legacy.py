"""Legacy-program partitioning (paper §4, "Supporting legacy software").

*"Our static analysis can infer dependencies and cuts a program into
segments to minimize the number of cross-segment dependencies, while
developers can provide hints on where application semantics transition in
their code and a profiling run could capture where resource usage patterns
change."*

The input is a weighted dependency graph (functions/blocks as nodes, call
or data-flow weights as edges).  :func:`partition_program` cuts it into K
segments using recursive Kernighan–Lin bisection seeded by developer hints,
and reports cut quality against naive baselines (benchmark E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import networkx as nx

__all__ = ["PartitionReport", "cut_weight", "partition_program", "random_partition"]


@dataclass
class PartitionReport:
    """Result of partitioning one program."""

    segments: List[Set[str]]
    cut_weight: float
    total_weight: float
    #: fraction of dependency weight that crosses segments (lower is better)
    cut_fraction: float = field(init=False)

    def __post_init__(self):
        self.cut_fraction = (
            self.cut_weight / self.total_weight if self.total_weight else 0.0
        )

    def segment_of(self, node: str) -> int:
        for index, segment in enumerate(self.segments):
            if node in segment:
                return index
        raise KeyError(node)


def cut_weight(graph: nx.Graph, segments: Sequence[Set[str]]) -> float:
    """Total weight of edges whose endpoints fall in different segments."""
    owner: Dict[str, int] = {}
    for index, segment in enumerate(segments):
        for node in segment:
            owner[node] = index
    weight = 0.0
    for u, v, data in graph.edges(data=True):
        if owner.get(u) != owner.get(v):
            weight += data.get("weight", 1.0)
    return weight


def _total_weight(graph: nx.Graph) -> float:
    return sum(data.get("weight", 1.0) for _u, _v, data in graph.edges(data=True))


def partition_program(
    dependency_graph: nx.Graph,
    num_segments: int,
    developer_hints: Optional[List[Set[str]]] = None,
) -> PartitionReport:
    """Cut ``dependency_graph`` into ``num_segments`` segments.

    Strategy: recursive Kernighan–Lin bisection (the classic min-cut
    refinement heuristic) until the requested segment count is reached.
    ``developer_hints`` — sets of nodes the developer says belong together
    ("where application semantics transition") — are honored by
    contracting each hint group into a super-node before cutting, so a
    hint group can never be split.
    """
    if num_segments < 1:
        raise ValueError("num_segments must be >= 1")
    graph = dependency_graph.to_undirected() if dependency_graph.is_directed() \
        else dependency_graph.copy()
    total = _total_weight(graph)
    if num_segments == 1 or graph.number_of_nodes() <= 1:
        return PartitionReport(
            segments=[set(graph.nodes)], cut_weight=0.0, total_weight=total
        )

    work_graph, groups = _contract_hints(graph, developer_hints or [])

    parts: List[Set[str]] = [set(work_graph.nodes)]
    while len(parts) < num_segments:
        # Bisect the part with the largest internal weight next.
        parts.sort(key=lambda p: _internal_weight(work_graph, p), reverse=True)
        target = parts.pop(0)
        if len(target) <= 1:
            parts.append(target)
            break
        subgraph = work_graph.subgraph(target).copy()
        left, right = nx.algorithms.community.kernighan_lin_bisection(
            subgraph, weight="weight", seed=7
        )
        parts.extend([set(left), set(right)])

    segments = [_expand(part, groups) for part in parts]
    # Keep empty-segment invariants: drop empties (possible when hints
    # force fewer distinct groups than requested segments).
    segments = [s for s in segments if s]
    return PartitionReport(
        segments=segments,
        cut_weight=cut_weight(graph, segments),
        total_weight=total,
    )


def random_partition(
    dependency_graph: nx.Graph, num_segments: int, seed: int = 0
) -> PartitionReport:
    """Baseline: assign nodes to segments uniformly at random."""
    import random as _random

    rng = _random.Random(seed)
    graph = dependency_graph.to_undirected() if dependency_graph.is_directed() \
        else dependency_graph
    segments: List[Set[str]] = [set() for _ in range(num_segments)]
    for node in graph.nodes:
        segments[rng.randrange(num_segments)].add(node)
    segments = [s for s in segments if s]
    return PartitionReport(
        segments=segments,
        cut_weight=cut_weight(graph, segments),
        total_weight=_total_weight(graph),
    )


def _contract_hints(graph: nx.Graph, hints: List[Set[str]]):
    """Merge each hint group into a super-node; returns (graph, groups)."""
    groups: Dict[str, Set[str]] = {}
    work = graph.copy()
    for index, hint in enumerate(hints):
        members = [n for n in hint if n in work]
        if len(members) < 2:
            continue
        super_name = f"__hint{index}__"
        groups[super_name] = set(members)
        anchor = members[0]
        for other in members[1:]:
            work = nx.contracted_nodes(work, anchor, other, self_loops=False)
        work = nx.relabel_nodes(work, {anchor: super_name})
    return work, groups


def _expand(part: Set[str], groups: Dict[str, Set[str]]) -> Set[str]:
    out: Set[str] = set()
    for node in part:
        out |= groups.get(node, {node})
    return out


def _internal_weight(graph: nx.Graph, part: Set[str]) -> float:
    return sum(
        data.get("weight", 1.0)
        for u, v, data in graph.subgraph(part).edges(data=True)
    )
