"""Task and data modules — the nodes of a UDC application DAG (§3.1).

*"A module could be a code block representing a task (e.g., A1 to A4, B1
and B2) or one or more data structures representing a set of data (S1 to
S4)."*

A :class:`TaskModule` carries what the *developer* knows statically: an
abstract amount of work, the set of hardware it could run on, and a code
identity (hash) for attestation.  A :class:`DataModule` carries a size and
access pattern.  Everything the *IT team* specifies (resources, security,
distribution) lives in the aspect system (:mod:`repro.core.aspects`) —
tied to modules but orthogonal to them, per Design Principle 1.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional

from repro.hardware.devices import DeviceType

__all__ = ["DataModule", "ModuleKind", "TaskModule"]


class ModuleKind(enum.Enum):
    TASK = "task"
    DATA = "data"


def _default_code_hash(name: str, fn: Optional[Callable]) -> str:
    """A stable identity for the module's code, used in attestation.

    Real deployments hash the deployable artifact; here we hash the
    function's bytecode when one is supplied, else the module name.
    """
    if fn is not None and hasattr(fn, "__code__"):
        return hashlib.sha256(fn.__code__.co_code).hexdigest()[:16]
    return hashlib.sha256(name.encode("utf-8")).hexdigest()[:16]


@dataclass
class TaskModule:
    """A unit of computation.

    Attributes:
        name: unique within the application (e.g. ``"A2"``).
        work: abstract work units; wall time on a device is
            ``work / (compute_rate * allocated_amount)``.
        device_candidates: the developer-declared *set of possible
            hardware* (§3.2); the profiler / scheduler picks within it.
        output_bytes: estimated bytes this task emits downstream.
        state_bytes: size of the task's in-flight state (what a
            checkpoint must persist).
        max_parallelism: the most allocation units the task can actually
            keep busy (None = perfectly scalable).  Allocating beyond it
            wastes resources — what runtime telemetry observes and the
            tuner corrects (§3.2's fine tuning).
        fn: optional Python callable executed functionally during the
            simulated run (lets examples compute real values end-to-end).
        sanitizer: the task reduces data sensitivity (Table 1's B1
            consent-filter/anonymize); the information-flow analysis only
            permits declassification through sanitizer tasks.
    """

    name: str
    work: float = 1.0
    device_candidates: FrozenSet[DeviceType] = frozenset({DeviceType.CPU})
    output_bytes: int = 1024
    state_bytes: int = 1024
    max_parallelism: Optional[float] = None
    fn: Optional[Callable] = None
    code_hash: str = ""
    sanitizer: bool = False
    kind: ModuleKind = field(default=ModuleKind.TASK, init=False)

    def __post_init__(self):
        if self.work <= 0:
            raise ValueError(f"module {self.name}: work must be positive")
        if not self.device_candidates:
            raise ValueError(f"module {self.name}: empty device candidate set")
        non_compute = {
            d for d in self.device_candidates
            if d.device_class.value != "compute"
        }
        if non_compute:
            raise ValueError(
                f"module {self.name}: task candidates must be compute devices, "
                f"got {sorted(d.value for d in non_compute)}"
            )
        if not self.code_hash:
            self.code_hash = _default_code_hash(self.name, self.fn)

    @property
    def effective_parallelism_cap(self) -> float:
        return self.max_parallelism if self.max_parallelism else float("inf")

    def usable_amount(self, amount: float) -> float:
        """How much of an allocation the task can actually keep busy."""
        return min(amount, self.effective_parallelism_cap)

    def execution_seconds(self, device_type: DeviceType, amount: float,
                          compute_rate: float) -> float:
        """Native seconds of execution given an allocation.

        Capacity beyond ``max_parallelism`` contributes nothing — the
        allocation is paid for but idle, which telemetry surfaces.
        """
        if device_type not in self.device_candidates:
            raise ValueError(
                f"module {self.name} cannot run on {device_type.value}"
            )
        if amount <= 0 or compute_rate <= 0:
            raise ValueError("amount and compute_rate must be positive")
        return self.work / (compute_rate * self.usable_amount(amount))


@dataclass
class DataModule:
    """A set of data structures with a size and an access pattern.

    ``hot`` marks data accessed on the application's latency-critical path
    (Figure 2's S3 medical image vs S4's archival output); the scheduler
    biases hot data toward memory-class media when the user's resource
    aspect does not pin one.

    ``sensitivity`` is the module's information-flow label — one of
    ``"public"``, ``"anonymized"``, ``"phi"`` (``None`` means public);
    the static analyzer propagates it along DAG edges.
    """

    name: str
    size_gb: float = 1.0
    record_bytes: int = 4096
    hot: bool = False
    sensitivity: Optional[str] = None
    kind: ModuleKind = field(default=ModuleKind.DATA, init=False)

    def __post_init__(self):
        if self.size_gb <= 0:
            raise ValueError(f"data module {self.name}: size must be positive")
        if self.record_bytes <= 0:
            raise ValueError(f"data module {self.name}: record size must be positive")
        if self.sensitivity is not None \
                and self.sensitivity not in ("public", "anonymized", "phi"):
            raise ValueError(
                f"data module {self.name}: sensitivity must be one of "
                f"public/anonymized/phi, got {self.sensitivity!r}"
            )

    @property
    def size_bytes(self) -> int:
        return int(self.size_gb * 1e9)
