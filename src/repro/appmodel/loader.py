"""Load applications from their serialized IR (paper §3.1).

The IR is the wire format between language frontends and the provider's
runtime: :func:`repro.appmodel.ir.compile_dag` produces it, and this
module consumes it — :func:`load_program` rebuilds an executable
:class:`~repro.appmodel.dag.ModuleDAG` from an
:class:`~repro.appmodel.ir.IRProgram` dict (e.g. parsed from a ``.json``
file written by a non-Python frontend).

Round-trip guarantee (tested): ``load_program(compile_dag(dag).to_dict())``
reconstructs a DAG that compiles back to the identical IR, module for
module.  Function bodies do not survive serialization (the IR carries code
*identity*, not code); reattach them with ``functions={name: callable}``.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Optional

from repro.appmodel.dag import DagValidationError, ModuleDAG
from repro.appmodel.module import DataModule, TaskModule
from repro.hardware.devices import DeviceType

__all__ = ["load_program", "load_program_file"]

_DEVICE_BY_NAME = {d.value: d for d in DeviceType}


def load_program(
    ir_dict: Dict,
    functions: Optional[Dict[str, Callable]] = None,
) -> ModuleDAG:
    """Rebuild a validated DAG from a serialized IR program.

    Args:
        ir_dict: the output of :meth:`IRProgram.to_dict` (or equivalent
            JSON produced by another frontend).
        functions: optional callables to attach to task modules by name.

    Raises:
        DagValidationError: malformed IR (missing fields, unknown devices,
            dangling edges) — with the offending module named.
    """
    functions = functions or {}
    if not isinstance(ir_dict, dict) or "modules" not in ir_dict:
        raise DagValidationError("IR must be a mapping with a 'modules' key")
    dag = ModuleDAG(name=str(ir_dict.get("name", "loaded-program")))

    colocations = []
    for name, raw in ir_dict["modules"].items():
        kind = raw.get("kind")
        if kind == "task":
            candidates = set()
            for device_name in raw.get("device_candidates", ["cpu"]):
                if device_name not in _DEVICE_BY_NAME:
                    raise DagValidationError(
                        f"module {name}: unknown device {device_name!r}"
                    )
                candidates.add(_DEVICE_BY_NAME[device_name])
            module = TaskModule(
                name=name,
                work=float(raw.get("work", 1.0)),
                device_candidates=frozenset(candidates),
                state_bytes=int(raw.get("size_bytes", 1024)),
                fn=functions.get(name),
                code_hash=str(raw.get("code_hash", "")),
                sanitizer=bool(raw.get("sanitizer", False)),
            )
            if raw.get("colocate_with"):
                colocations.append({name, *raw["colocate_with"]})
        elif kind == "data":
            size_gb = max(float(raw.get("size_bytes", 1e9)) / 1e9, 1e-9)
            sensitivity = raw.get("sensitivity")
            module = DataModule(
                name=name, size_gb=size_gb,
                sensitivity=str(sensitivity) if sensitivity is not None else None,
            )
        else:
            raise DagValidationError(
                f"module {name}: unknown kind {kind!r} (expected task/data)"
            )
        dag.add_module(module)

    for edge in ir_dict.get("edges", []):
        try:
            src, dst, nbytes = edge
        except (TypeError, ValueError) as exc:
            raise DagValidationError(f"malformed edge {edge!r}") from exc
        dag.add_edge(str(src), str(dst), bytes_transferred=int(nbytes))

    for name, raw in ir_dict["modules"].items():
        if raw.get("kind") != "task":
            continue
        for affinity in raw.get("affinities", []):
            data_name, weight = affinity
            dag.affine(name, str(data_name), weight_bytes=int(weight))

    # De-duplicate colocation groups (each member repeats the group).
    seen = []
    for group in colocations:
        if group not in seen:
            seen.append(group)
            dag.colocate(*sorted(group))

    dag.validate()
    return dag


def load_program_file(
    path: str, functions: Optional[Dict[str, Callable]] = None
) -> ModuleDAG:
    """Load an IR program from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_program(json.load(handle), functions=functions)
