"""Application semantics (paper §3.1).

A UDC program is *"a DAG of modules"* — task modules (code blocks) and
data modules (data structures) — enhanced with locality relationships, and
optionally written against an actor model where each actor is a module
communicating by explicit messages (the paper cites LegoOS-line evidence
that explicit messages beat shared memory on disaggregated hardware).

* :mod:`~repro.appmodel.module` — task and data module definitions;
* :mod:`~repro.appmodel.dag` — the module DAG with dependency edges,
  co-location groups, and task↔data affinity hints;
* :mod:`~repro.appmodel.annotations` — the decorator/builder API
  application developers use ("libraries in different languages that offer
  annotations for expressing module scopes and locality hints");
* :mod:`~repro.appmodel.actor` — a message-passing actor framework with
  per-actor mailboxes and no shared state;
* :mod:`~repro.appmodel.ir` — the uniform intermediate representation
  ("high-level modules and their relationships, not low-level code
  instructions") that language frontends compile to;
* :mod:`~repro.appmodel.legacy` — semi-automated partitioning of legacy
  programs into module DAGs by minimizing cross-segment dependencies (§4).
"""

from repro.appmodel.actor import Actor, ActorRef, ActorSystem
from repro.appmodel.annotations import AppBuilder, data, task
from repro.appmodel.dag import DagValidationError, ModuleDAG
from repro.appmodel.ir import IRModule, IRProgram, compile_dag
from repro.appmodel.legacy import PartitionReport, partition_program
from repro.appmodel.loader import load_program, load_program_file
from repro.appmodel.module import DataModule, ModuleKind, TaskModule

__all__ = [
    "Actor",
    "ActorRef",
    "ActorSystem",
    "AppBuilder",
    "DagValidationError",
    "DataModule",
    "IRModule",
    "IRProgram",
    "ModuleDAG",
    "ModuleKind",
    "PartitionReport",
    "TaskModule",
    "compile_dag",
    "load_program",
    "load_program_file",
    "data",
    "partition_program",
    "task",
]
