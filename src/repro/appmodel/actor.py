"""A message-passing actor framework (paper §3.1).

*"One promising model could be based on the Actor framework ... Each actor
represents a module that could run on a hardware resource unit.  These
(distributed) actors communicate via input and output messages and there
is no shared state between actors.  Furthermore, messages could be
reliably recorded for faster recovery."*

Implementation notes:

* each :class:`Actor` owns a private mailbox (a simulator
  :class:`~repro.simulator.resources.Store`) and a behavior generator;
* actors never share objects — :meth:`ActorRef.tell` deep-copies payloads
  so mutation cannot leak across actors (enforcing "no shared state"
  rather than asking politely);
* the :class:`ActorSystem` keeps a durable message journal, which
  :meth:`ActorSystem.replay_for` filters per-actor — the paper's "reliably
  recorded for faster recovery";
* message delivery between actors placed at different locations pays
  fabric latency when the system is built with a fabric.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.hardware.fabric import Fabric, Location
from repro.simulator.engine import Event, Process, Simulator
from repro.simulator.resources import Store

__all__ = ["Actor", "ActorRef", "ActorSystem", "Envelope"]

_msg_ids = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """A journaled message."""

    msg_id: int
    sender: str
    recipient: str
    payload: Any
    sent_at: float
    size_bytes: int = 256


@dataclass(frozen=True)
class ActorRef:
    """A location-transparent handle used to send messages to an actor."""

    name: str
    system: "ActorSystem" = field(repr=False, compare=False)

    def tell(self, payload: Any, sender: str = "external") -> Event:
        """Asynchronously deliver ``payload``; returns the delivery event."""
        return self.system._deliver(sender, self.name, payload)


class Actor:
    """One actor: a mailbox plus a behavior.

    A behavior is ``behavior(actor, message) -> Optional[generator]``: it
    may return a generator to perform timed work (yielding simulator
    events) while processing the message.  State lives in
    ``actor.state`` — private to this actor by construction.
    """

    def __init__(
        self,
        system: "ActorSystem",
        name: str,
        behavior: Callable[["Actor", Any], Optional[Generator]],
        location: Optional[Location] = None,
    ):
        self.system = system
        self.name = name
        self.behavior = behavior
        self.location = location
        self.mailbox = Store(system.sim)
        self.state: Dict[str, Any] = {}
        self.processed: int = 0
        self._process: Optional[Process] = None
        self.stopped = False

    @property
    def ref(self) -> ActorRef:
        return ActorRef(name=self.name, system=self.system)

    def tell(self, recipient: "ActorRef", payload: Any) -> Event:
        """Send from this actor (records the correct sender)."""
        return self.system._deliver(self.name, recipient.name, payload)

    def _run(self):
        while not self.stopped:
            envelope = yield self.mailbox.get()
            if envelope is _POISON:
                return self.processed
            result = self.behavior(self, envelope.payload)
            if result is not None:
                yield self.system.sim.process(result)
            self.processed += 1
        return self.processed


_POISON = object()


class ActorSystem:
    """Registry, journal, and delivery fabric for a set of actors."""

    def __init__(self, sim: Simulator, fabric: Optional[Fabric] = None):
        self.sim = sim
        self.fabric = fabric
        self.actors: Dict[str, Actor] = {}
        self.journal: List[Envelope] = []

    def spawn(
        self,
        name: str,
        behavior: Callable[[Actor, Any], Optional[Generator]],
        location: Optional[Location] = None,
    ) -> ActorRef:
        if name in self.actors:
            raise ValueError(f"actor {name!r} already exists")
        actor = Actor(self, name, behavior, location=location)
        actor._process = self.sim.process(actor._run(), name=f"actor:{name}")
        self.actors[name] = actor
        return actor.ref

    def actor(self, name: str) -> Actor:
        return self.actors[name]

    def stop(self, name: str) -> None:
        """Graceful stop: the actor drains its mailbox up to the poison pill."""
        actor = self.actors[name]
        actor.stopped = False  # let it reach the pill
        actor.mailbox.put(_POISON)

    def _deliver(self, sender: str, recipient: str, payload: Any) -> Event:
        if recipient not in self.actors:
            raise KeyError(f"no actor named {recipient!r}")
        envelope = Envelope(
            msg_id=next(_msg_ids),
            sender=sender,
            recipient=recipient,
            # Deep copy enforces no-shared-state between actors.
            payload=copy.deepcopy(payload),
            sent_at=self.sim.now,
            size_bytes=_estimate_size(payload),
        )
        self.journal.append(envelope)
        target = self.actors[recipient]
        source = self.actors.get(sender)
        if (
            self.fabric is not None
            and target.location is not None
            and source is not None
            and source.location is not None
        ):
            return self.sim.process(
                self._deliver_over_fabric(source.location, target, envelope)
            )
        return target.mailbox.put(envelope)

    def _deliver_over_fabric(self, src: Location, target: Actor, envelope: Envelope):
        yield self.fabric.send(src, target.location, envelope.size_bytes)
        yield target.mailbox.put(envelope)

    # -- recovery support -------------------------------------------------------

    def replay_for(self, name: str) -> List[Envelope]:
        """All journaled messages addressed to ``name`` in delivery order —
        the raw material for message-replay recovery."""
        return [e for e in self.journal if e.recipient == name]

    def respawn_from_journal(
        self,
        name: str,
        behavior: Callable[[Actor, Any], Optional[Generator]],
        location: Optional[Location] = None,
    ) -> ActorRef:
        """Recreate a dead actor and refeed its journaled inbox.

        The respawned actor reprocesses its history (deterministic
        behaviors converge to the pre-failure state) and then continues
        with new traffic.
        """
        history = self.replay_for(name)
        old = self.actors.pop(name, None)
        if old is not None and old._process is not None:
            old._process.interrupt("respawn")
        ref = self.spawn(name, behavior, location=location)
        actor = self.actors[name]
        for envelope in history:
            actor.mailbox.put(envelope)
        return ref


def _estimate_size(payload: Any) -> int:
    if isinstance(payload, (bytes, bytearray)):
        return max(64, len(payload))
    if isinstance(payload, str):
        return max(64, len(payload.encode("utf-8")))
    if isinstance(payload, dict):
        return max(64, 64 * len(payload))
    if isinstance(payload, (list, tuple)):
        return max(64, sum(_estimate_size(p) for p in payload))
    return 256
