"""Uniform intermediate representation (paper §3.1).

*"We will then extend their compilers to compile them into a uniform
intermediate representation (in units of IR modules) for resource
allocation and execution.  Our IR is defined as high-level modules and
their relationships, not low-level code instructions.  For example, each
language can have a different type of IR module that specifies the
execution environment for programs in this language."*

:func:`compile_dag` lowers a :class:`~repro.appmodel.dag.ModuleDAG` into an
:class:`IRProgram`: per-module :class:`IRModule` records tagged with a
language runtime, typed interfaces derived from edges, and the locality
metadata the scheduler consumes.  The IR is deliberately serializable
(plain dicts) — it is the contract between user-side frontends and the
provider-side runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.appmodel.dag import ModuleDAG
from repro.appmodel.module import DataModule, TaskModule

__all__ = ["IRModule", "IRProgram", "compile_dag"]

#: language → runtime the provider must provision inside the exec env.
KNOWN_RUNTIMES = {
    "python": "cpython-3.9",
    "java": "jvm-11",
    "go": "go-1.16",
    "rust": "native",
    "native": "native",
}


@dataclass(frozen=True)
class IRModule:
    """One lowered module: identity + interface + placement metadata."""

    name: str
    kind: str                       # "task" | "data"
    language: str
    runtime: str
    code_hash: str
    work: float
    size_bytes: int
    device_candidates: Tuple[str, ...]
    inputs: Tuple[str, ...]         # upstream module names
    outputs: Tuple[str, ...]        # downstream module names
    colocate_with: Tuple[str, ...] = ()
    affinities: Tuple[Tuple[str, int], ...] = ()
    #: information-flow label for data modules (None = public)
    sensitivity: Optional[str] = None
    #: task is a declassification point for the information-flow analysis
    sanitizer: bool = False

    def to_dict(self) -> Dict:
        """Serializable form (the cross-language wire format)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "language": self.language,
            "runtime": self.runtime,
            "code_hash": self.code_hash,
            "work": self.work,
            "size_bytes": self.size_bytes,
            "device_candidates": list(self.device_candidates),
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "colocate_with": list(self.colocate_with),
            "affinities": [list(a) for a in self.affinities],
            "sensitivity": self.sensitivity,
            "sanitizer": self.sanitizer,
        }


@dataclass
class IRProgram:
    """A lowered application: modules + the edge list with sizes."""

    name: str
    modules: Dict[str, IRModule] = field(default_factory=dict)
    edges: List[Tuple[str, str, int]] = field(default_factory=list)

    def module(self, name: str) -> IRModule:
        return self.modules[name]

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "modules": {n: m.to_dict() for n, m in self.modules.items()},
            "edges": [list(e) for e in self.edges],
        }

    def interface_errors(self) -> List[str]:
        """Cross-check: every declared input/output corresponds to an edge.

        Returns human-readable diagnostics (empty when consistent)."""
        errors = []
        edge_set = {(s, d) for s, d, _ in self.edges}
        for module in self.modules.values():
            for upstream in module.inputs:
                if (upstream, module.name) not in edge_set:
                    errors.append(
                        f"{module.name} declares input {upstream} with no edge"
                    )
            for downstream in module.outputs:
                if (module.name, downstream) not in edge_set:
                    errors.append(
                        f"{module.name} declares output {downstream} with no edge"
                    )
        return errors


def compile_dag(
    dag: ModuleDAG,
    language: str = "python",
    per_module_language: Optional[Dict[str, str]] = None,
) -> IRProgram:
    """Lower a validated DAG to IR.

    ``per_module_language`` lets a polyglot application tag individual
    modules; unknown languages are rejected here rather than at provision
    time.
    """
    dag.validate()
    per_module_language = per_module_language or {}
    for lang in list(per_module_language.values()) + [language]:
        if lang not in KNOWN_RUNTIMES:
            raise ValueError(
                f"unknown language {lang!r}; known: {sorted(KNOWN_RUNTIMES)}"
            )

    program = IRProgram(name=dag.name)
    groups = dag.merged_colocation_groups()

    for name, module in dag.modules.items():
        lang = per_module_language.get(name, language)
        colocate: Set[str] = set()
        for group in groups:
            if name in group:
                colocate = group - {name}
        affinities = tuple(
            sorted(
                (data_name, weight)
                for (task_name, data_name), weight in dag.affinities.items()
                if task_name == name
            )
        )
        if isinstance(module, TaskModule):
            ir_module = IRModule(
                name=name,
                kind="task",
                language=lang,
                runtime=KNOWN_RUNTIMES[lang],
                code_hash=module.code_hash,
                work=module.work,
                size_bytes=module.state_bytes,
                device_candidates=tuple(
                    sorted(d.value for d in module.device_candidates)
                ),
                inputs=tuple(sorted(dag.predecessors(name))),
                outputs=tuple(sorted(dag.successors(name))),
                colocate_with=tuple(sorted(colocate)),
                affinities=affinities,
                sanitizer=module.sanitizer,
            )
        else:
            assert isinstance(module, DataModule)
            ir_module = IRModule(
                name=name,
                kind="data",
                language=lang,
                runtime="none",
                code_hash="",
                work=0.0,
                size_bytes=module.size_bytes,
                device_candidates=(),
                inputs=tuple(sorted(dag.predecessors(name))),
                outputs=tuple(sorted(dag.successors(name))),
                sensitivity=module.sensitivity,
            )
        program.modules[name] = ir_module

    for edge in dag.edges:
        program.edges.append((edge.src, edge.dst, edge.bytes_transferred))
    return program
