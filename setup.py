"""Setuptools shim for environments without the wheel package.

``pip install -e .`` requires ``wheel`` for PEP 517 editable installs; on
offline machines without it, ``python setup.py develop`` works through this
shim.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
