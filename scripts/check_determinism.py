#!/usr/bin/env python
"""Self-lint the scheduler-adjacent modules for ordering hazards.

The simulator's whole value is reproducibility: two runs of the same
workload must produce byte-identical reports.  The two ways that breaks
in practice are both one-liners that look harmless in review:

* iterating a ``set`` (or ``dict`` built from one) without ``sorted()``
  — Python's set order is salted per process, so placement order, and
  with it every modeled latency, changes run to run;
* ordering by ``id(...)`` — CPython object addresses differ between
  processes, so ``sorted``/``min``/``max`` keyed by ``id`` is a coin
  flip dressed up as a tie-break.

This script walks the AST of the placement-critical modules and flags:

``set-iteration``
    a ``for`` loop, comprehension, ``list()``/``tuple()`` call, or
    unpacking whose iterable is a set display, set comprehension, or a
    bare ``set(...)`` / ``.keys()``-of-``set`` call, not wrapped in
    ``sorted()``;
``id-ordering``
    ``sorted``/``min``/``max`` whose ``key=`` lambda returns ``id(...)``
    or whose iterable maps ``id`` over elements.

A finding on a line carrying a ``# det: ok`` comment is suppressed —
for the rare case where the order provably cannot escape (e.g. feeding
a commutative reduction like ``sum``).

Exit status: 0 when clean, 1 when any finding survives.  CI runs this
in the lint job; add new placement-path modules to ``TARGETS`` as the
scheduler grows.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: files and directories whose iteration order feeds placement decisions
#: — or, for simulator/ and replay/, journaled fingerprints: a salted
#: set order there shows up as a false divergence in ``udc bisect``
TARGETS = [
    SRC / "core" / "cells.py",
    SRC / "core" / "scheduler.py",
    SRC / "hardware" / "pools.py",
    SRC / "service",
    SRC / "simulator",
    SRC / "replay",
    # byte-deterministic outputs promised to users: gateway responses,
    # autopilot plans, analyzer reports and the modularizer's emitted
    # definitions (``udc modularize --json`` pins byte-identity)
    SRC / "gateway",
    SRC / "economics",
    SRC / "analysis",
]

SUPPRESS_MARK = "# det: ok"


def _is_set_expr(node: ast.expr) -> bool:
    """Does this expression certainly produce a ``set``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            # Conservative: only flag when the receiver is itself a
            # set expression, so ``df.union(...)`` on other types
            # doesn't false-positive.
            return _is_set_expr(func.value)
    return False


def _is_sorted_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted")


def _returns_id(node: ast.expr) -> bool:
    """Does this expression evaluate ``id(...)`` (possibly in a tuple)?"""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "id":
        return True
    if isinstance(node, ast.Tuple):
        return any(_returns_id(el) for el in node.elts)
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self):
        self.findings: List[Tuple[int, str, str]] = []

    # -- unsorted set iteration ---------------------------------------------

    def _check_iterable(self, node: ast.expr):
        if _is_set_expr(node):
            self.findings.append((
                node.lineno, "set-iteration",
                "iterating a set without sorted(); set order is salted "
                "per process",
            ))

    def visit_For(self, node: ast.For):
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node):
        for gen in node.generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp):
        # Building another set from a set is fine — order still doesn't
        # exist until someone iterates the result.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        func = node.func
        # list({...}) / tuple(set(...)) — materializes salted order.
        if isinstance(func, ast.Name) and func.id in ("list", "tuple") \
                and node.args and _is_set_expr(node.args[0]):
            self._check_iterable(node.args[0])
        # sorted/min/max keyed by id().
        if isinstance(func, ast.Name) and func.id in ("sorted", "min", "max"):
            for kw in node.keywords:
                if kw.arg == "key" and isinstance(kw.value, ast.Lambda) \
                        and _returns_id(kw.value.body):
                    self.findings.append((
                        node.lineno, "id-ordering",
                        f"{func.id}() keyed by id(); object addresses "
                        f"differ across processes",
                    ))
            # sorted(map(id, xs)) / sorted(id(x) for x in xs)
            if node.args:
                arg = node.args[0]
                if isinstance(arg, ast.GeneratorExp) \
                        and _returns_id(arg.elt):
                    self.findings.append((
                        node.lineno, "id-ordering",
                        f"{func.id}() over id() values; object addresses "
                        f"differ across processes",
                    ))
        self.generic_visit(node)


def _iter_target_files() -> Iterator[Path]:
    for target in TARGETS:
        if target.is_dir():
            yield from sorted(target.rglob("*.py"))
        else:
            yield target


def lint_file(path: Path) -> List[Tuple[Path, int, str, str]]:
    source = path.read_text()
    lines = source.splitlines()
    visitor = _Visitor()
    visitor.visit(ast.parse(source, filename=str(path)))
    out = []
    for lineno, rule, message in visitor.findings:
        line = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        if SUPPRESS_MARK in line:
            continue
        out.append((path, lineno, rule, message))
    return out


def main() -> int:
    findings = []
    for path in _iter_target_files():
        findings.extend(lint_file(path))
    findings.sort(key=lambda f: (str(f[0]), f[1]))
    for path, lineno, rule, message in findings:
        rel = path.relative_to(REPO)
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"{len(findings)} determinism hazard(s); wrap the iterable "
              f"in sorted() or annotate the line with '{SUPPRESS_MARK}'")
        return 1
    print(f"determinism lint: clean "
          f"({sum(1 for _ in _iter_target_files())} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
