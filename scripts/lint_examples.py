#!/usr/bin/env python
"""Run ``udc lint`` over every definition the examples ship.

Two sources of definitions:

* the Table 1 medical workload (app + definition), linted in full —
  structure and information-flow passes included;
* top-level definition dicts harvested **statically** from
  ``examples/*.py``.  The examples execute whole pipelines at import
  time (``quickstart.py`` runs a runtime at module level), so importing
  them here is off the table; instead this walks each file's AST and
  evaluates assignments whose target is ``definition`` or ``*_SPEC``.
  A tiny resolver follows references between harvested names (e.g.
  ``RECOGNITION_SPEC`` reusing ``LEDGER_SPEC["ledger"]``); anything
  built dynamically is skipped and listed as such.

Harvested specs are linted without their app DAG (the DAG is built in
code), which still covers parse validity, conflicts, and feasibility
against the default catalog.  Any error-severity finding fails the
script; warnings are reported but do not gate.

Exit status: 0 clean, 1 on error findings or an unparseable example.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import analyze_definition  # noqa: E402
from repro.hardware.topology import build_datacenter  # noqa: E402
from repro.workloads.medical import build_medical_app  # noqa: E402

EXAMPLES = REPO / "examples"


def _wanted(name: str) -> bool:
    return name == "definition" or name.endswith("_SPEC")


class _Unresolvable(Exception):
    pass


def _resolve(node: ast.expr, known: Dict[str, object]) -> object:
    """Evaluate a definition expression: literals plus references to
    previously harvested names (``NAME`` or ``NAME["key"]``)."""
    if isinstance(node, ast.Dict):
        return {_resolve(k, known): _resolve(v, known)
                for k, v in zip(node.keys, node.values)}
    if isinstance(node, (ast.List, ast.Tuple)):
        return [_resolve(el, known) for el in node.elts]
    if isinstance(node, ast.Name):
        if node.id in known:
            return known[node.id]
        raise _Unresolvable(node.id)
    if isinstance(node, ast.Subscript):
        container = _resolve(node.value, known)
        return container[_resolve(node.slice, known)]
    try:
        return ast.literal_eval(node)
    except ValueError:
        raise _Unresolvable(ast.dump(node))


def harvest(path: Path) -> Tuple[Dict[str, dict], List[str]]:
    """All top-level definition dicts in one example file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    known: Dict[str, object] = {}
    specs: Dict[str, dict] = {}
    skipped: List[str] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        try:
            value = _resolve(node.value, known)
        except (_Unresolvable, KeyError, TypeError):
            if _wanted(target.id):
                skipped.append(target.id)
            continue
        known[target.id] = value
        if _wanted(target.id) and isinstance(value, dict):
            specs[target.id] = value
    return specs, skipped


def report(label: str, rep) -> bool:
    """Print one lint report; return True when it has errors."""
    if len(rep) == 0:
        print(f"  {label}: clean")
        return False
    print(f"  {label}:")
    for line in rep.format_text().splitlines():
        print(f"    {line}")
    return not rep.ok


def main() -> int:
    datacenter = build_datacenter()
    failed = False

    print("medical workload (full lint: app + definition)")
    dag, definition = build_medical_app()
    rep = analyze_definition(definition, app=dag, datacenter=datacenter)
    failed |= report("workloads.medical", rep)

    for path in sorted(EXAMPLES.glob("*.py")):
        specs, skipped = harvest(path)
        if not specs and not skipped:
            continue
        print(f"{path.relative_to(REPO)}")
        for name in sorted(specs):
            rep = analyze_definition(specs[name], datacenter=datacenter)
            failed |= report(name, rep)
        for name in sorted(skipped):
            print(f"  {name}: skipped (built dynamically)")

    if failed:
        print("example lint: error findings above")
        return 1
    print("example lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
