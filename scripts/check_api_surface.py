#!/usr/bin/env python
"""Guard the public API surface against accidental drift.

Renders every name in ``repro.__all__`` with a deterministic signature
string and diffs the result against the checked-in snapshot
``docs/api-surface.txt``.  CI fails on any difference, so adding,
removing, or re-signaturing a public name is always a reviewed,
intentional act (run with ``--update`` to bless the new surface).

The renderer is deliberately annotation-free: annotation and enum reprs
vary across Python minor versions, while parameter names, kinds, and
default *values* do not.  Enum defaults render as ``Class.MEMBER``.
"""

from __future__ import annotations

import argparse
import difflib
import enum
import inspect
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import repro  # noqa: E402  (needs the path bootstrap above)

SNAPSHOT = REPO / "docs" / "api-surface.txt"


def _render_default(value) -> str:
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    return repr(value)


def _render_signature(obj) -> str:
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return "(...)"
    parts = []
    seen_keyword_only = False
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            parts.append(f"*{param.name}")
            seen_keyword_only = True
            continue
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            parts.append(f"**{param.name}")
            continue
        if param.kind is inspect.Parameter.KEYWORD_ONLY \
                and not seen_keyword_only:
            parts.append("*")
            seen_keyword_only = True
        text = param.name
        if param.default is not inspect.Parameter.empty:
            text += f"={_render_default(param.default)}"
        parts.append(text)
    return "(" + ", ".join(parts) + ")"


def _render_name(name: str) -> str:
    obj = getattr(repro, name)
    if name == "__version__":
        return f"repro.__version__ = {obj!r}"
    if inspect.isclass(obj):
        if issubclass(obj, enum.Enum):
            members = ", ".join(member.name for member in obj)
            return f"repro.{name} [enum: {members}]"
        if issubclass(obj, BaseException):
            return f"repro.{name}{_render_signature(obj.__init__)}" \
                .replace("(self, ", "(").replace("(self)", "()")
        return f"repro.{name}{_render_signature(obj)}"
    if callable(obj):
        return f"repro.{name}{_render_signature(obj)}"
    return f"repro.{name} = {obj!r}"


def render_surface() -> str:
    lines = [
        "# Public API surface of the `repro` package.",
        "# Regenerate with: python scripts/check_api_surface.py --update",
    ]
    for name in sorted(repro.__all__):
        lines.append(_render_name(name))
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the snapshot instead of checking it")
    args = parser.parse_args(argv)

    current = render_surface()
    if args.update:
        SNAPSHOT.write_text(current, encoding="utf-8")
        print(f"wrote {SNAPSHOT.relative_to(REPO)}")
        return 0

    if not SNAPSHOT.exists():
        print(f"missing snapshot {SNAPSHOT.relative_to(REPO)}; "
              f"run with --update to create it", file=sys.stderr)
        return 1
    recorded = SNAPSHOT.read_text(encoding="utf-8")
    if recorded == current:
        print(f"API surface matches {SNAPSHOT.relative_to(REPO)} "
              f"({len(repro.__all__)} public names)")
        return 0
    diff = difflib.unified_diff(
        recorded.splitlines(keepends=True),
        current.splitlines(keepends=True),
        fromfile="docs/api-surface.txt (recorded)",
        tofile="repro.__all__ (actual)",
    )
    sys.stderr.writelines(diff)
    print("\nAPI surface drifted; if intentional, regenerate with "
          "`python scripts/check_api_surface.py --update`", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
