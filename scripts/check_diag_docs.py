#!/usr/bin/env python
"""Keep ``docs/analysis.md``'s code table in lockstep with CODE_CATALOG.

The analyzer's ``UDC0xx`` codes are append-only public API: scripts and
CI gates match on them, and the docs table is the reference users read.
The two drift in exactly two ways — a new code lands without a docs row,
or a docs row is reworded away from the catalog text.  This script fails
CI on both:

* every code in :data:`repro.analysis.CODE_CATALOG` must appear as a
  ``| UDCnnn | severity | description |`` row in ``docs/analysis.md``;
* every ``UDCnnn`` row in the docs table must exist in the catalog;
* each row's description must match the catalog's one-liner after
  normalization (``×`` → ``x``, whitespace collapsed) — the docs may
  typeset, not reword.

Exit status: 0 in lockstep, 1 on any drift.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs" / "analysis.md"

sys.path.insert(0, str(REPO / "src"))

from repro.analysis import CODE_CATALOG  # noqa: E402

#: ``| UDC012 | error | deadline below ... |`` (severity may carry a
#: footnote marker, e.g. ``error*``)
ROW = re.compile(
    r"^\|\s*(UDC\d{3})\s*\|\s*\S+\s*\|\s*(.*?)\s*\|\s*$"
)


def _normalize(text: str) -> str:
    return " ".join(text.replace("×", "x").split())


def main() -> int:
    rows = {}
    for line in DOCS.read_text(encoding="utf-8").splitlines():
        match = ROW.match(line)
        if match:
            rows[match.group(1)] = match.group(2)

    problems = []
    for code in sorted(CODE_CATALOG):
        if code not in rows:
            problems.append(
                f"{code}: in CODE_CATALOG but missing from the docs table"
            )
        elif _normalize(rows[code]) != _normalize(CODE_CATALOG[code]):
            problems.append(
                f"{code}: docs say {rows[code]!r}, "
                f"catalog says {CODE_CATALOG[code]!r}"
            )
    for code in sorted(rows):
        if code not in CODE_CATALOG:
            problems.append(
                f"{code}: documented but absent from CODE_CATALOG"
            )

    if problems:
        for problem in problems:
            print(f"diag-docs drift: {problem}", file=sys.stderr)
        print(f"{len(problems)} drift problem(s); update docs/analysis.md "
              f"or repro/analysis/diagnostics.py", file=sys.stderr)
        return 1
    print(f"diag docs: {len(rows)} documented code(s) in lockstep "
          f"with CODE_CATALOG")
    return 0


if __name__ == "__main__":
    sys.exit(main())
